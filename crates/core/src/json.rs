//! A minimal JSON value writer and parser (keeps `serde_json` out of
//! the allowed dependency set; reports and manifests are small and
//! flat).

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Clone, Debug)]
pub enum Json {
    /// `null`
    Null,
    /// Boolean.
    Bool(bool),
    /// A non-negative integer, kept exact at full `u64` width (JSON has
    /// one number type, but `f64` silently rounds above 2^53 — WCET
    /// cycle counts and fingerprints must survive a round trip).
    Int(u64),
    /// Any other number (rendered without trailing zeros for integral
    /// values; non-finite values render as `null` — JSON has no NaN or
    /// infinity literal, and `null` keeps the document parseable).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with deterministic (sorted) key order.
    Obj(BTreeMap<String, Json>),
}

/// `Int` and `Num` are both JSON numbers, so they compare equal when
/// they denote the same value exactly: `Int(5) == Num(5.0)`, but
/// `Int(2^53 + 1) != Num(9007199254740992.0)` — the float cannot
/// represent that integer, so no float is equal to it.
impl PartialEq for Json {
    fn eq(&self, other: &Json) -> bool {
        match (self, other) {
            (Json::Null, Json::Null) => true,
            (Json::Bool(a), Json::Bool(b)) => a == b,
            (Json::Int(a), Json::Int(b)) => a == b,
            (Json::Num(a), Json::Num(b)) => a == b,
            (Json::Int(i), Json::Num(n)) | (Json::Num(n), Json::Int(i)) => {
                // Exact: `n` is an integral f64 in [0, 2^64) whose
                // (lossless, in that range) u64 conversion equals `i`.
                n.fract() == 0.0
                    && *n >= 0.0
                    && *n < 18_446_744_073_709_551_616.0
                    && *n as u64 == *i
            }
            (Json::Str(a), Json::Str(b)) => a == b,
            (Json::Arr(a), Json::Arr(b)) => a == b,
            (Json::Obj(a), Json::Obj(b)) => a == b,
            _ => false,
        }
    }
}

impl Json {
    /// Convenience integer constructor. Exact for every `u64`: values
    /// above 2^53 are *not* routed through `f64` (which would corrupt
    /// them — e.g. `9007199254740993` would render as `…992`).
    pub fn int(v: u64) -> Json {
        Json::Int(v)
    }

    /// Convenience string constructor.
    pub fn str(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// Convenience object constructor.
    pub fn obj(entries: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(entries.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Parses a JSON document (the inverse of `Display`).
    ///
    /// # Errors
    ///
    /// [`JsonParseError`] with a byte offset on malformed input,
    /// including trailing garbage after the top-level value.
    pub fn parse(text: &str) -> Result<Json, JsonParseError> {
        let mut p = Parser { text, bytes: text.as_bytes(), pos: 0, depth: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number. Lossy for `Int` values
    /// above 2^53 (nearest-`f64` rounding); use [`Json::as_u64`] when
    /// exactness matters.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as a non-negative integer, if it is one.
    /// Exact for `Int` across the whole `u64` range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => Some(*i),
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n < 9e15 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(map) => Some(map),
            _ => None,
        }
    }

    /// Member lookup on objects (`None` on other kinds or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj().and_then(|m| m.get(key))
    }
}

/// A JSON syntax error, with the byte offset where it was detected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON syntax error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonParseError {}

/// Array/object nesting beyond this is rejected rather than risking a
/// stack overflow in the recursive-descent parser on hostile input.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonParseError {
        JsonParseError { offset: self.pos, message: message.into() }
    }

    fn enter(&mut self) -> Result<(), JsonParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH}")));
        }
        Ok(())
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", c as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut plain = !negative;
        if self.peek() == Some(b'.') {
            plain = false;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            plain = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        // A plain digit run is an integer and stays exact (`f64` would
        // round anything above 2^53). Beyond u64 range, fall back to
        // the nearest float like every other JSON parser.
        if plain {
            if let Ok(i) = text.parse::<u64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonParseError { offset: start, message: format!("bad number `{text}`") })
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs (rare in manifests, but
                            // round-tripping shouldn't corrupt them).
                            let c = if (0xd800..0xdc00).contains(&code) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        other => return Err(self.err(format!("bad escape `\\{}`", other as char))),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy the whole run up to the next escape, closing
                    // quote or control character in one slice. The run
                    // ends on an ASCII byte, which is always a char
                    // boundary, and the input is a &str, so the slice
                    // is valid UTF-8 by construction.
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == b'"' || c == b'\\' || c < 0x20 {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(&self.text[start..self.pos]);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let c = self.peek().ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char).to_digit(16).ok_or_else(|| self.err("bad hex digit"))?;
            code = code * 16 + d;
            self.pos += 1;
        }
        Ok(code)
    }

    fn array(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'{')?;
        self.enter()?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(i) => write!(f, "{i}"),
            Json::Num(n) => {
                if !n.is_finite() {
                    // JSON has no NaN/infinity literal; `{n}` would emit
                    // `NaN` and corrupt the document. `null` is the
                    // conventional lossy-but-parseable rendering.
                    f.write_str("null")
                } else if n.fract() == 0.0 && n.abs() < 9e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => {
                f.write_str("\"")?;
                for c in s.chars() {
                    match c {
                        '"' => f.write_str("\\\"")?,
                        '\\' => f.write_str("\\\\")?,
                        '\n' => f.write_str("\\n")?,
                        '\t' => f.write_str("\\t")?,
                        '\r' => f.write_str("\\r")?,
                        c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                        c => write!(f, "{c}")?,
                    }
                }
                f.write_str("\"")
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}:{v}", Json::Str(k.clone()))?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_values() {
        let j = Json::obj([
            ("wcet", Json::int(1234)),
            ("name", Json::str("fib\"call")),
            ("phases", Json::Arr(vec![Json::int(1), Json::Num(2.5), Json::Null])),
            ("ok", Json::Bool(true)),
        ]);
        assert_eq!(
            j.to_string(),
            r#"{"name":"fib\"call","ok":true,"phases":[1,2.5,null],"wcet":1234}"#
        );
    }

    #[test]
    fn escapes_control_characters() {
        assert_eq!(Json::str("a\nb\u{1}").to_string(), "\"a\\nb\\u0001\"");
    }

    #[test]
    fn parses_what_it_prints() {
        let j = Json::obj([
            ("wcet", Json::int(1234)),
            ("name", Json::str("fib\"call\n")),
            ("ratio", Json::Num(2.5)),
            ("neg", Json::Num(-17.0)),
            ("phases", Json::Arr(vec![Json::int(1), Json::Null, Json::Bool(false)])),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(BTreeMap::new())),
        ]);
        assert_eq!(Json::parse(&j.to_string()).unwrap(), j);
    }

    #[test]
    fn parses_whitespace_exponents_and_unicode() {
        let j =
            Json::parse(" { \"a\" : [ 1e2 , -3.5E-1, \"\\u00e9\\ud83d\\ude00/\" ] } \n").unwrap();
        let arr = j.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(100.0));
        assert_eq!(arr[1].as_f64(), Some(-0.35));
        assert_eq!(arr[2].as_str(), Some("é😀/"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "nul",
            "1 2",
            "\"abc",
            "{\"a\" 1}",
            "[1 2]",
            "\"\\q\"",
            "\u{1}",
            // Lone or mispaired surrogates must be rejected, not
            // silently decoded to some nearby scalar.
            "\"\\ud800\"",
            "\"\\ud800\\ue000\"",
            "\"\\ud800\\ud800\"",
            "\"\\udc00\"",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_is_an_error_not_a_stack_overflow() {
        let deep: String = "[".repeat(100_000) + &"]".repeat(100_000);
        let e = Json::parse(&deep).unwrap_err();
        assert!(e.message.contains("nesting"), "{e}");
        // At the limit itself, parsing succeeds.
        let ok = "[".repeat(128) + &"]".repeat(128);
        assert!(Json::parse(&ok).is_ok());
        let over = "[".repeat(129) + &"]".repeat(129);
        assert!(Json::parse(&over).is_err());
    }

    #[test]
    fn long_strings_parse_in_linear_time() {
        // 1 MiB of string content (would take minutes under the old
        // per-char suffix revalidation); generous bound to stay robust
        // on loaded CI runners.
        let body = "x".repeat(1 << 20);
        let doc = format!("{{\"source\": \"{body}\"}}");
        let t = std::time::Instant::now();
        let j = Json::parse(&doc).unwrap();
        assert!(t.elapsed().as_secs_f64() < 5.0, "string parse took {:?}", t.elapsed());
        assert_eq!(j.get("source").unwrap().as_str().map(|s| s.len()), Some(1 << 20));
    }

    #[test]
    fn large_integers_survive_exactly() {
        // Regression: `int()` used to route through f64, corrupting
        // anything above 2^53 (9007199254740993 became …992).
        for v in [(1u64 << 53) - 1, 1u64 << 53, (1u64 << 53) + 1, u64::MAX - 1, u64::MAX] {
            let rendered = Json::int(v).to_string();
            assert_eq!(rendered, v.to_string(), "rendering must be the exact digits");
            let parsed = Json::parse(&rendered).unwrap();
            assert_eq!(parsed.as_u64(), Some(v), "exact parse round trip for {v}");
            assert_eq!(parsed.to_string(), rendered, "stable normal form for {v}");
        }
    }

    #[test]
    fn int_and_num_compare_as_numbers() {
        assert_eq!(Json::Int(5), Json::Num(5.0));
        assert_eq!(Json::Num(0.0), Json::Int(0));
        assert_ne!(Json::Int((1 << 53) + 1), Json::Num(9007199254740992.0));
        assert_ne!(Json::Int(5), Json::Num(5.5));
        assert_ne!(Json::Int(0), Json::Num(-1.0));
        // 2^64 rounds into f64 but is outside u64: never equal.
        assert_ne!(Json::Int(u64::MAX), Json::Num(18446744073709551616.0));
    }

    #[test]
    fn integers_beyond_u64_fall_back_to_float() {
        let parsed = Json::parse("18446744073709551616").unwrap();
        assert_eq!(parsed.as_u64(), None);
        assert_eq!(parsed.as_f64(), Some(18446744073709551616.0));
    }

    #[test]
    fn non_finite_numbers_render_as_null() {
        // Regression: `{n}` emitted the literal `NaN` / `inf`, which no
        // JSON parser (including ours) accepts.
        for n in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(Json::Num(n).to_string(), "null");
        }
        let doc = Json::obj([("rate", Json::Num(f64::NAN))]).to_string();
        assert_eq!(doc, r#"{"rate":null}"#);
        assert!(Json::parse(&doc).is_ok(), "the document stays parseable");
    }

    #[test]
    fn accessors_discriminate_kinds() {
        let j = Json::parse(r#"{"n": 3, "s": "x", "b": true, "f": 1.5}"#).unwrap();
        assert_eq!(j.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(j.get("f").unwrap().as_u64(), None);
        assert_eq!(j.get("f").unwrap().as_f64(), Some(1.5));
        assert_eq!(j.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(j.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(j.get("missing"), None);
        assert_eq!(j.get("n").unwrap().get("x"), None);
    }
}
