//! The WCET analyzer pipeline (the aiT equivalent).

use std::collections::BTreeMap;
use std::time::Instant;

use stamp_ai::{Icfg, VivuConfig};
use stamp_cache::CacheAnalysis;
use stamp_cfg::CfgBuilder;
use stamp_hw::HwConfig;
use stamp_isa::Program;
use stamp_loopbound::{LoopBoundAnalysis, LoopBoundOptions};
use stamp_path::{PathOptions, WcetResult};
use stamp_pipeline::PipelineAnalysis;
use stamp_value::{ValueAnalysis, ValueOptions};

use crate::annot::Annotations;
use crate::error::AnalysisError;
use crate::report::WcetReport;

/// Configuration of the analyzer pipeline.
#[derive(Clone, Debug)]
pub struct AnalysisConfig {
    /// The processor model.
    pub hw: HwConfig,
    /// VIVU context settings.
    pub vivu: VivuConfig,
    /// Value-analysis settings (domain selection, widening).
    pub value: ValueOptions,
    /// Use infeasible-path facts in the ILP (E4 ablation switch).
    pub use_infeasible: bool,
    /// Maximum CFG ↔ value-analysis iterations for indirect jumps.
    pub max_cfg_iterations: usize,
}

impl Default for AnalysisConfig {
    fn default() -> AnalysisConfig {
        AnalysisConfig {
            hw: HwConfig::default(),
            vivu: VivuConfig::default(),
            value: ValueOptions::default(),
            use_infeasible: true,
            max_cfg_iterations: 4,
        }
    }
}

/// The WCET analyzer. Build with [`WcetAnalysis::new`], configure with
/// the builder methods, then [`WcetAnalysis::run`].
///
/// See the crate documentation for an end-to-end example.
pub struct WcetAnalysis<'p> {
    program: &'p Program,
    config: AnalysisConfig,
    annotations: Annotations,
}

impl<'p> WcetAnalysis<'p> {
    /// Creates an analyzer for `program` with the default configuration.
    pub fn new(program: &'p Program) -> WcetAnalysis<'p> {
        WcetAnalysis { program, config: AnalysisConfig::default(), annotations: Annotations::new() }
    }

    /// Replaces the whole configuration.
    pub fn config(mut self, config: AnalysisConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the hardware model.
    pub fn hw(mut self, hw: HwConfig) -> Self {
        self.config.hw = hw;
        self
    }

    /// Sets the VIVU context configuration.
    pub fn vivu(mut self, vivu: VivuConfig) -> Self {
        self.config.vivu = vivu;
        self
    }

    /// Sets the value-analysis options.
    pub fn value_options(mut self, value: ValueOptions) -> Self {
        self.config.value = value;
        self
    }

    /// Enables or disables infeasible-path pruning in the ILP.
    pub fn use_infeasible(mut self, on: bool) -> Self {
        self.config.use_infeasible = on;
        self
    }

    /// Attaches annotations.
    pub fn annotations(mut self, annotations: Annotations) -> Self {
        self.annotations = annotations;
        self
    }

    /// Runs all phases and produces the report.
    ///
    /// # Errors
    ///
    /// See [`AnalysisError`]: irreducible or recursive control flow,
    /// unresolved indirect jumps, missing loop bounds.
    pub fn run(&self) -> Result<WcetReport, AnalysisError> {
        let program = self.program;
        let cfg_opts = &self.config;
        let mut phases: Vec<(String, f64)> = Vec::new();
        let clock = |phases: &mut Vec<(String, f64)>, name: &str, t: Instant| {
            phases.push((name.to_string(), t.elapsed().as_secs_f64()));
        };

        // ---- Phase 1+2 iterated: CFG building ↔ value analysis.
        let mut extra: BTreeMap<u32, Vec<u32>> = self.annotations.resolved_indirects(program);
        let mut iteration = 0;
        let (cfg, icfg, va) = loop {
            iteration += 1;
            let t = Instant::now();
            let mut builder = CfgBuilder::new(program);
            for (a, ts) in &extra {
                builder.indirect_targets(*a, ts.iter().copied());
            }
            let cfg = builder.build()?;
            clock(&mut phases, "cfg building", t);

            let t = Instant::now();
            let icfg = Icfg::build(&cfg, &cfg_opts.vivu)?;
            clock(&mut phases, "context expansion", t);

            let t = Instant::now();
            let va = ValueAnalysis::run(program, &cfg_opts.hw, &cfg, &icfg, &cfg_opts.value);
            clock(&mut phases, "value analysis", t);

            if cfg.unresolved_indirects().is_empty() {
                break (cfg, icfg, va);
            }
            // Feed resolved targets back into CFG reconstruction.
            let mut progress = false;
            for (&addr, targets) in va.indirect_targets() {
                let slot = extra.entry(addr).or_default();
                for &t in targets {
                    if !slot.contains(&t) {
                        slot.push(t);
                        progress = true;
                    }
                }
            }
            if !progress || iteration >= cfg_opts.max_cfg_iterations {
                return Err(AnalysisError::UnresolvedIndirects {
                    addrs: cfg.unresolved_indirects().to_vec(),
                });
            }
        };

        // ---- Phase 3: loop bounds.
        let t = Instant::now();
        let lb_opts = LoopBoundOptions {
            annotations: self.annotations.resolved_loop_bounds(program),
            ..LoopBoundOptions::default()
        };
        let lb = LoopBoundAnalysis::run(program, &cfg, &icfg, &va, &lb_opts);
        clock(&mut phases, "loop bound analysis", t);

        // ---- Phase 4: cache analysis.
        let t = Instant::now();
        let ca = CacheAnalysis::run(&cfg_opts.hw, &cfg, &icfg, &va);
        clock(&mut phases, "cache analysis", t);

        // ---- Phase 5: pipeline analysis.
        let t = Instant::now();
        let pa = PipelineAnalysis::run(&cfg_opts.hw, &cfg, &icfg, &ca, &va);
        clock(&mut phases, "pipeline analysis", t);

        // ---- Phase 6: path analysis (IPET).
        let t = Instant::now();
        let path_opts = PathOptions { use_infeasible: cfg_opts.use_infeasible };
        let result: WcetResult = stamp_path::analyze(&cfg, &icfg, &va, &lb, &pa, &path_opts)?;
        clock(&mut phases, "path analysis (ILP)", t);

        Ok(WcetReport::assemble(program, &cfg, &icfg, &va, &lb, &ca, &pa, &result, phases))
    }
}
