//! The WCET analyzer pipeline (the aiT equivalent), expressed as an
//! explicit phase graph.
//!
//! Each phase of the paper's pipeline — CFG building, VIVU context
//! expansion, value analysis, loop bounds, cache, pipeline, path/ILP —
//! is a node of the graph in `phase.rs`: it declares an input
//! fingerprint over exactly what it reads and produces a typed
//! artifact. [`WcetAnalysis::run_with`] drives the graph through a
//! shared [`ArtifactStore`], so concurrent batch jobs whose phase
//! inputs agree compute each artifact once and share it; [`WcetAnalysis::run`]
//! drives the same graph through a disabled store (compute everything
//! locally, cache nothing) — there is exactly one driver.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use stamp_ai::{Icfg, VivuConfig};
use stamp_cache::CacheAnalysis;
use stamp_cfg::{Cfg, CfgBuilder};
use stamp_hw::HwConfig;
use stamp_isa::Program;
use stamp_loopbound::{LoopBoundAnalysis, LoopBoundOptions};
use stamp_path::{PathOptions, WcetResult};
use stamp_pipeline::PipelineAnalysis;
use stamp_value::{FrozenValueAnalysis, ValueAnalysis, ValueOptions};

use crate::annot::Annotations;
use crate::artifact::{ArtifactClaim, ArtifactStore};
use crate::error::AnalysisError;
use crate::fingerprint::Fingerprint;
use crate::phase::{self, PhaseId};
use crate::report::{PhaseStats, WcetReport};

/// Configuration of the analyzer pipeline.
#[derive(Clone, Debug)]
pub struct AnalysisConfig {
    /// The processor model.
    pub hw: HwConfig,
    /// VIVU context settings.
    pub vivu: VivuConfig,
    /// Value-analysis settings (domain selection, widening).
    pub value: ValueOptions,
    /// Use infeasible-path facts in the ILP (E4 ablation switch).
    pub use_infeasible: bool,
    /// Solve the path ILP via memoized per-segment summaries shared
    /// through the artifact store (see `stamp_path::SummaryMemo`); the
    /// WCET is exactly the monolithic optimum. Disable to force the
    /// whole-supergraph solve.
    pub summaries: bool,
    /// Run the cache and pipeline phases via memoized per-procedure
    /// microarchitectural summaries shared through the artifact store
    /// (see `stamp_cache::UarchMemo`); classifications and times are
    /// exactly the monolithic fixpoint's, and any program the
    /// summarizer cannot handle falls back to the monolithic solve.
    /// Disable to force the monolithic fixpoints.
    pub uarch_summaries: bool,
    /// Maximum CFG ↔ value-analysis iterations for indirect jumps.
    pub max_cfg_iterations: usize,
}

impl Default for AnalysisConfig {
    fn default() -> AnalysisConfig {
        AnalysisConfig {
            hw: HwConfig::default(),
            vivu: VivuConfig::default(),
            value: ValueOptions::default(),
            use_infeasible: true,
            summaries: true,
            uarch_summaries: true,
            max_cfg_iterations: 4,
        }
    }
}

/// Runs the value phase against the store. The computing job publishes
/// the deep-frozen (`Send + Sync`) form and keeps its own analysis;
/// reusing jobs thaw a job-local copy — the kernel's `Rc`-based
/// copy-on-write state never crosses a thread boundary.
pub(crate) fn value_phase(
    store: &ArtifactStore,
    fp: Fingerprint,
    program: &Program,
    hw: &HwConfig,
    cfg: &Cfg,
    icfg: &Icfg,
    options: &ValueOptions,
) -> (ValueAnalysis, bool) {
    match store.claim(PhaseId::Value, fp) {
        ArtifactClaim::Disabled => (ValueAnalysis::run(program, hw, cfg, icfg, options), false),
        ArtifactClaim::Ready(stored) => {
            let any = stored.expect("the value analysis is infallible");
            let frozen: Arc<FrozenValueAnalysis> =
                any.downcast().expect("value artifacts are FrozenValueAnalysis");
            (frozen.thaw(), true)
        }
        ArtifactClaim::Fill(guard) => {
            let va = ValueAnalysis::run(program, hw, cfg, icfg, options);
            guard.fulfill(Ok(Arc::new(va.freeze())));
            (va, false)
        }
    }
}

/// Routes segment-summary lookups through the shared [`ArtifactStore`]
/// (with a job-local front cache), so isomorphic supergraph segments
/// are solved once per store — across call sites, batch jobs, `serve`
/// requests, and, with a durable backend, processes. Solve errors are
/// never published: dropping the fill guard releases the claim.
struct StoreSummaryMemo<'s> {
    store: &'s ArtifactStore,
    local: std::cell::RefCell<std::collections::HashMap<Vec<u8>, Arc<stamp_path::SegmentSummary>>>,
    /// Segments this job actually solved / recalled (local or store).
    computed: std::cell::Cell<u64>,
    reused: std::cell::Cell<u64>,
}

impl<'s> StoreSummaryMemo<'s> {
    fn new(store: &'s ArtifactStore) -> StoreSummaryMemo<'s> {
        StoreSummaryMemo {
            store,
            local: Default::default(),
            computed: Default::default(),
            reused: Default::default(),
        }
    }

    fn solve_counted(
        &self,
        solve: &mut dyn FnMut() -> Result<stamp_path::SegmentSummary, stamp_path::PathError>,
    ) -> Result<Arc<stamp_path::SegmentSummary>, stamp_path::PathError> {
        let summary = Arc::new(solve()?);
        self.computed.set(self.computed.get() + 1);
        Ok(summary)
    }
}

impl stamp_path::SummaryMemo for StoreSummaryMemo<'_> {
    fn summarize(
        &self,
        canonical: &[u8],
        solve: &mut dyn FnMut() -> Result<stamp_path::SegmentSummary, stamp_path::PathError>,
    ) -> Result<Arc<stamp_path::SegmentSummary>, stamp_path::PathError> {
        if let Some(hit) = self.local.borrow().get(canonical) {
            self.reused.set(self.reused.get() + 1);
            return Ok(hit.clone());
        }
        let fp = phase::summary_fingerprint(canonical);
        let summary = match self.store.claim(PhaseId::Summary, fp) {
            ArtifactClaim::Disabled => self.solve_counted(solve)?,
            ArtifactClaim::Ready(stored) => match stored.ok().and_then(|any| any.downcast().ok()) {
                Some(summary) => {
                    self.reused.set(self.reused.get() + 1);
                    summary
                }
                // A summary slot never holds an error or a foreign
                // type; recover by solving locally if one ever does.
                None => self.solve_counted(solve)?,
            },
            ArtifactClaim::Fill(guard) => {
                // On a solve error the guard is dropped unfulfilled,
                // releasing the claim — segment errors are not cached
                // (the path phase itself caches the job-level error).
                let summary = self.solve_counted(solve)?;
                guard.fulfill(Ok(summary.clone()));
                summary
            }
        };
        self.local.borrow_mut().insert(canonical.to_vec(), summary.clone());
        Ok(summary)
    }
}

/// Routes microarchitectural region-summary lookups through the shared
/// [`ArtifactStore`] (with a job-local front cache), so identical
/// procedure bodies entered under the same cache-state class are
/// analyzed once per store — across call sites, batch jobs, `serve`
/// requests, and, with a durable backend, processes. The payload is the
/// summary's canonical byte form; the consuming analysis validates it
/// structurally and falls back to the monolithic fixpoint when the
/// bytes do not decode (see `stamp_cache::UarchMemo`).
struct StoreUarchMemo<'s> {
    store: &'s ArtifactStore,
    /// `"cache"` or `"pipeline"` — separates the two key spaces.
    kind: &'static str,
    local: std::collections::HashMap<Vec<u8>, std::rc::Rc<Vec<u8>>>,
    computed: u64,
    reused: u64,
}

impl<'s> StoreUarchMemo<'s> {
    fn new(store: &'s ArtifactStore, kind: &'static str) -> StoreUarchMemo<'s> {
        StoreUarchMemo { store, kind, local: Default::default(), computed: 0, reused: 0 }
    }
}

impl stamp_cache::UarchMemo for StoreUarchMemo<'_> {
    fn recall(&mut self, key: &[u8], compute: &mut dyn FnMut() -> Vec<u8>) -> std::rc::Rc<Vec<u8>> {
        if let Some(hit) = self.local.get(key) {
            self.reused += 1;
            return std::rc::Rc::clone(hit);
        }
        let fp = phase::uarch_fingerprint(self.kind, key);
        let bytes = match self.store.claim(PhaseId::Uarch, fp) {
            ArtifactClaim::Disabled => {
                self.computed += 1;
                std::rc::Rc::new(compute())
            }
            ArtifactClaim::Ready(stored) => {
                match stored.ok().and_then(|any| any.downcast::<Vec<u8>>().ok()) {
                    Some(shared) => {
                        self.reused += 1;
                        std::rc::Rc::new((*shared).clone())
                    }
                    // A uarch slot never holds an error or a foreign
                    // type; recover by computing locally if one ever
                    // does.
                    None => {
                        self.computed += 1;
                        std::rc::Rc::new(compute())
                    }
                }
            }
            ArtifactClaim::Fill(guard) => {
                self.computed += 1;
                let bytes = compute();
                guard.fulfill(Ok(Arc::new(bytes.clone())));
                std::rc::Rc::new(bytes)
            }
        };
        self.local.insert(key.to_vec(), std::rc::Rc::clone(&bytes));
        bytes
    }
}

/// The front half of the phase graph behind a [`WcetReport`]: the CFG,
/// the VIVU supergraph and the value-analysis fixpoint, exactly as the
/// path analysis saw them. Returned by
/// [`WcetAnalysis::run_with_artifacts`] so differential oracles (the
/// soundness fuzzer) can check concrete simulator states against the
/// abstract exit states without re-running any phase.
pub struct ValueArtifacts {
    /// The control-flow graph (with resolved indirect targets).
    pub cfg: Arc<Cfg>,
    /// The interprocedural supergraph.
    pub icfg: Arc<Icfg>,
    /// The value-analysis fixpoint over `icfg`.
    pub va: ValueAnalysis,
}

/// Every phase artifact behind a [`WcetReport`], exactly as the report
/// was assembled from them. Returned by [`WcetAnalysis::run_full`] so
/// downstream consumers — the probabilistic path sampler, the
/// differential oracle — can run *on top of* a finished analysis
/// without recomputing any phase: the loop bounds, pipeline times and
/// ILP witness are shared `Arc`s straight out of the phase DAG.
pub struct PhaseArtifacts {
    /// The control-flow graph (with resolved indirect targets).
    pub cfg: Arc<Cfg>,
    /// The interprocedural supergraph.
    pub icfg: Arc<Icfg>,
    /// The value-analysis fixpoint over `icfg`.
    pub va: ValueAnalysis,
    /// The loop-bound analysis (per-instance iteration bounds).
    pub lb: Arc<LoopBoundAnalysis>,
    /// The cache analysis (hit/miss/persistence classifications).
    pub ca: Arc<CacheAnalysis>,
    /// The pipeline analysis (per-node times, penalties).
    pub pa: Arc<PipelineAnalysis>,
    /// The ILP result: the WCET bound and its witness counts.
    pub path: Arc<WcetResult>,
}

/// The WCET analyzer. Build with [`WcetAnalysis::new`], configure with
/// the builder methods, then [`WcetAnalysis::run`] (or
/// [`WcetAnalysis::run_with`] to share phase artifacts across jobs).
///
/// See the crate documentation for an end-to-end example.
pub struct WcetAnalysis<'p> {
    program: &'p Program,
    config: AnalysisConfig,
    annotations: Annotations,
}

impl<'p> WcetAnalysis<'p> {
    /// Creates an analyzer for `program` with the default configuration.
    pub fn new(program: &'p Program) -> WcetAnalysis<'p> {
        WcetAnalysis { program, config: AnalysisConfig::default(), annotations: Annotations::new() }
    }

    /// Replaces the whole configuration.
    pub fn config(mut self, config: AnalysisConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the hardware model.
    pub fn hw(mut self, hw: HwConfig) -> Self {
        self.config.hw = hw;
        self
    }

    /// Sets the VIVU context configuration.
    pub fn vivu(mut self, vivu: VivuConfig) -> Self {
        self.config.vivu = vivu;
        self
    }

    /// Sets the value-analysis options.
    pub fn value_options(mut self, value: ValueOptions) -> Self {
        self.config.value = value;
        self
    }

    /// Enables or disables infeasible-path pruning in the ILP.
    pub fn use_infeasible(mut self, on: bool) -> Self {
        self.config.use_infeasible = on;
        self
    }

    /// Enables or disables the summarized (per-segment, memoized) path
    /// solve.
    pub fn summaries(mut self, on: bool) -> Self {
        self.config.summaries = on;
        self
    }

    /// Enables or disables the summarized (per-procedure, memoized)
    /// cache and pipeline solves.
    pub fn uarch_summaries(mut self, on: bool) -> Self {
        self.config.uarch_summaries = on;
        self
    }

    /// Attaches annotations.
    pub fn annotations(mut self, annotations: Annotations) -> Self {
        self.annotations = annotations;
        self
    }

    /// Runs all phases locally and produces the report.
    ///
    /// # Errors
    ///
    /// See [`AnalysisError`]: irreducible or recursive control flow,
    /// unresolved indirect jumps, missing loop bounds.
    pub fn run(&self) -> Result<WcetReport, AnalysisError> {
        self.run_with(&ArtifactStore::disabled())
    }

    /// Runs all phases through a shared [`ArtifactStore`], reusing any
    /// phase artifact another job already produced under the same input
    /// fingerprint. The report is byte-identical to [`WcetAnalysis::run`];
    /// only [`PhaseStats::reused`] and wall times differ.
    ///
    /// # Errors
    ///
    /// As [`WcetAnalysis::run`]. Phase errors are cached and replayed
    /// identically to sharing jobs.
    pub fn run_with(&self, store: &ArtifactStore) -> Result<WcetReport, AnalysisError> {
        self.run_with_artifacts(store).map(|(report, _)| report)
    }

    /// Like [`WcetAnalysis::run_with`], but also hands back the
    /// [`ValueArtifacts`] the report was assembled from. This is the
    /// entry point of the differential soundness oracle: the fuzzer
    /// simulates the program and checks every concrete register against
    /// `artifacts.va`'s abstract exit state at the halt site — one
    /// analysis run serves both the bound and the containment check.
    ///
    /// # Errors
    ///
    /// As [`WcetAnalysis::run`].
    pub fn run_with_artifacts(
        &self,
        store: &ArtifactStore,
    ) -> Result<(WcetReport, ValueArtifacts), AnalysisError> {
        self.run_full(store)
            .map(|(report, a)| (report, ValueArtifacts { cfg: a.cfg, icfg: a.icfg, va: a.va }))
    }

    /// Like [`WcetAnalysis::run_with_artifacts`], but hands back *every*
    /// phase artifact ([`PhaseArtifacts`]), not just the value-analysis
    /// front half. This is the entry point for consumers layered on a
    /// finished analysis — the probabilistic path sampler walks the
    /// supergraph against `lb`/`pa` without re-running any phase.
    ///
    /// # Errors
    ///
    /// As [`WcetAnalysis::run`].
    pub fn run_full(
        &self,
        store: &ArtifactStore,
    ) -> Result<(WcetReport, PhaseArtifacts), AnalysisError> {
        let program = self.program;
        let cfg_opts = &self.config;
        let program_fp = phase::program_fingerprint(program);
        let mut phases: Vec<PhaseStats> = Vec::new();

        // ---- Phase 1+2 iterated: CFG building ↔ value analysis. Each
        // iteration's artifacts are keyed by the indirect-target map it
        // starts from, so the whole feedback loop replays from the
        // store when another job analyzed the same program.
        let mut extra: BTreeMap<u32, Vec<u32>> = self.annotations.resolved_indirects(program);
        let mut iteration = 0;
        let (cfg, icfg, va, value_fp) = loop {
            iteration += 1;
            // Phase boundaries are cancellation points: a job running
            // under a deadline is cut between phases (and inside the
            // solver's own checkpoints), never mid-artifact. No store
            // lock is held here, so the unwind cannot poison anything.
            stamp_exec::cancel::checkpoint_now();
            let t = Instant::now();
            let cfg_fp = phase::cfg_fingerprint(program_fp, &extra);
            let (cfg, reused) = store.get_or_compute(PhaseId::Cfg, cfg_fp, || {
                let mut builder = CfgBuilder::new(program);
                for (a, ts) in &extra {
                    builder.indirect_targets(*a, ts.iter().copied());
                }
                builder.build().map_err(AnalysisError::from)
            })?;
            phases.push(PhaseStats {
                phase: PhaseId::Cfg,
                seconds: t.elapsed().as_secs_f64(),
                reused,
            });

            let t = Instant::now();
            let context_fp = phase::context_fingerprint(cfg_fp, &cfg_opts.vivu);
            let (icfg, reused) = store.get_or_compute(PhaseId::Context, context_fp, || {
                Icfg::build(&cfg, &cfg_opts.vivu).map_err(AnalysisError::from)
            })?;
            phases.push(PhaseStats {
                phase: PhaseId::Context,
                seconds: t.elapsed().as_secs_f64(),
                reused,
            });

            let t = Instant::now();
            let value_fp = phase::value_fingerprint(context_fp, &cfg_opts.hw.mem, &cfg_opts.value);
            let (va, reused) =
                value_phase(store, value_fp, program, &cfg_opts.hw, &cfg, &icfg, &cfg_opts.value);
            phases.push(PhaseStats {
                phase: PhaseId::Value,
                seconds: t.elapsed().as_secs_f64(),
                reused,
            });

            if cfg.unresolved_indirects().is_empty() {
                break (cfg, icfg, va, value_fp);
            }
            // Feed resolved targets back into CFG reconstruction.
            let mut progress = false;
            for (&addr, targets) in va.indirect_targets() {
                let slot = extra.entry(addr).or_default();
                for &t in targets {
                    if !slot.contains(&t) {
                        slot.push(t);
                        progress = true;
                    }
                }
            }
            if !progress || iteration >= cfg_opts.max_cfg_iterations {
                return Err(AnalysisError::UnresolvedIndirects {
                    addrs: cfg.unresolved_indirects().to_vec(),
                });
            }
        };

        // ---- Phase 3: loop bounds.
        stamp_exec::cancel::checkpoint_now();
        let t = Instant::now();
        let lb_opts = LoopBoundOptions {
            annotations: self.annotations.resolved_loop_bounds(program),
            ..LoopBoundOptions::default()
        };
        let lb_fp = phase::loopbound_fingerprint(value_fp, &lb_opts);
        let (lb, reused) = store.get_or_compute(PhaseId::LoopBound, lb_fp, || {
            Ok(LoopBoundAnalysis::run(program, &cfg, &icfg, &va, &lb_opts))
        })?;
        phases.push(PhaseStats {
            phase: PhaseId::LoopBound,
            seconds: t.elapsed().as_secs_f64(),
            reused,
        });

        // ---- Phase 4: cache analysis. With `uarch_summaries` the
        // fixpoint runs over memoized per-procedure summaries; any
        // program (or stored byte string) the summarizer rejects falls
        // back to the monolithic solve — the classifications are
        // identical either way.
        stamp_exec::cancel::checkpoint_now();
        let t = Instant::now();
        let cache_fp = phase::cache_fingerprint(value_fp, &cfg_opts.hw, cfg_opts.uarch_summaries);
        let mut cache_memo = StoreUarchMemo::new(store, "cache");
        let (ca, reused) = store.get_or_compute(PhaseId::Cache, cache_fp, || {
            if cfg_opts.uarch_summaries {
                if let Some((ca, _)) =
                    CacheAnalysis::run_summarized(&cfg_opts.hw, &cfg, &icfg, &va, &mut cache_memo)
                {
                    return Ok(ca);
                }
            }
            Ok(CacheAnalysis::run(&cfg_opts.hw, &cfg, &icfg, &va))
        })?;
        phases.push(PhaseStats {
            phase: PhaseId::Cache,
            seconds: t.elapsed().as_secs_f64(),
            reused,
        });

        // ---- Phase 5: pipeline analysis (summarized under the same
        // contract as the cache phase).
        stamp_exec::cancel::checkpoint_now();
        let t = Instant::now();
        let pipeline_fp =
            phase::pipeline_fingerprint(cache_fp, &cfg_opts.hw, cfg_opts.uarch_summaries);
        let mut pipe_memo = StoreUarchMemo::new(store, "pipeline");
        let (pa, reused) = store.get_or_compute(PhaseId::Pipeline, pipeline_fp, || {
            if cfg_opts.uarch_summaries {
                if let Some((pa, _)) = PipelineAnalysis::run_summarized(
                    &cfg_opts.hw,
                    &cfg,
                    &icfg,
                    &ca,
                    &va,
                    &mut pipe_memo,
                ) {
                    return Ok(pa);
                }
            }
            Ok(PipelineAnalysis::run(&cfg_opts.hw, &cfg, &icfg, &ca, &va))
        })?;
        phases.push(PhaseStats {
            phase: PhaseId::Pipeline,
            seconds: t.elapsed().as_secs_f64(),
            reused,
        });
        let (uarch_computed, uarch_reused) =
            (cache_memo.computed + pipe_memo.computed, cache_memo.reused + pipe_memo.reused);

        // ---- Phase 6: path analysis (IPET).
        stamp_exec::cancel::checkpoint_now();
        let t = Instant::now();
        let path_fp = phase::path_fingerprint(
            pipeline_fp,
            lb_fp,
            cfg_opts.use_infeasible,
            cfg_opts.summaries,
        );
        let memo = StoreSummaryMemo::new(store);
        let (result, reused) = store.get_or_compute(PhaseId::Path, path_fp, || {
            let path_opts = PathOptions {
                use_infeasible: cfg_opts.use_infeasible,
                summaries: cfg_opts.summaries,
            };
            stamp_path::analyze_with_memo(&cfg, &icfg, &va, &lb, &pa, &path_opts, &memo)
                .map_err(AnalysisError::from)
        })?;
        phases.push(PhaseStats {
            phase: PhaseId::Path,
            seconds: t.elapsed().as_secs_f64(),
            reused,
        });
        // Zero/zero when the whole path artifact was reused (or the
        // program offered no decomposition).
        let (summaries_computed, summaries_reused) = (memo.computed.get(), memo.reused.get());

        let report = WcetReport::assemble(
            program,
            &cfg,
            &icfg,
            &va,
            &lb,
            &ca,
            &pa,
            &result,
            phases,
            (summaries_computed, summaries_reused),
            (uarch_computed, uarch_reused),
        );
        Ok((report, PhaseArtifacts { cfg, icfg, va, lb, ca, pa, path: result }))
    }
}
