//! The durable backend of the artifact store: an append-only,
//! CRC-checked artifact log on disk.
//!
//! `stamp batch --store DIR` keeps one log file per store directory.
//! Each record persists one `(phase, fingerprint)` artifact in the
//! versioned binary encoding of `stamp_codec`; the header pins the log
//! format and a schema fingerprint over every artifact codec, so a
//! stale or foreign log is recreated rather than misread. Corruption is
//! never fatal: a record with a bad CRC (or a truncated tail from a
//! killed process) marks the end of the valid prefix — the log is
//! truncated there, a warning is surfaced, and the affected artifacts
//! are simply recomputed.
//!
//! Soundness note: the on-disk key is the same chained input
//! fingerprint that keys the in-memory store, so disk reuse inherits
//! the soundness argument of `artifact.rs` — plus the CRC and strict
//! decoding guard against the log itself rotting. Errors are *not*
//! persisted (unlike the in-memory store): an environment-dependent
//! failure must not poison later runs.

use std::any::Any;
use std::collections::HashMap;
use std::fs::{self, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use stamp_codec::{crc32, decode_value, encode_value, Codec, CodecError};

use crate::fingerprint::{Fingerprint, Fp};
use crate::phase::PhaseId;

const MAGIC: &[u8; 8] = b"STAMPART";
/// Log container format (header + record framing).
const FORMAT_VERSION: u32 = 1;
/// Version of the artifact encodings themselves. Bump on any
/// incompatible change to a `Codec` impl reachable from a phase
/// artifact; old logs are then discarded wholesale instead of being
/// misdecoded.
const ARTIFACT_CODEC_VERSION: u32 = 1;

/// Name of the log file inside a store directory.
const LOG_NAME: &str = "artifacts.log";

const HEADER_LEN: u64 = 8 + 4 + 16;
/// Record framing: payload length + CRC32 of the payload.
const RECORD_HEADER_LEN: u64 = 4 + 4;
/// Payload prefix: phase byte + 16-byte fingerprint.
const PAYLOAD_KEY_LEN: usize = 1 + 16;

/// Fingerprint over everything that defines artifact-bytes
/// compatibility: the codec version and the phase vocabulary.
fn schema_fingerprint() -> Fingerprint {
    let mut fp = Fp::new("stamp/store-disk/schema");
    fp.u32(ARTIFACT_CODEC_VERSION);
    for p in PhaseId::ALL {
        fp.str(p.name());
    }
    fp.finish()
}

/// The append-side sink of the log. Production is the log file;
/// tests inject failing writers to exercise degradation.
pub(crate) trait LogSink: Write + Send {}
impl<T: Write + Send> LogSink for T {}

struct Inner {
    sink: Box<dyn LogSink>,
    index: HashMap<(PhaseId, Fingerprint), Arc<Vec<u8>>>,
    /// Set on the first write failure: persistence is off for the rest
    /// of this process, reads keep serving from the in-memory index.
    degraded: bool,
    /// The degradation warning, waiting to be surfaced exactly once.
    pending_warning: Option<String>,
}

/// A durable artifact log (see the module docs). One per
/// `--store DIR`; shared behind the [`crate::ArtifactStore`].
///
/// # Fault tolerance
///
/// Writes are best-effort: the first append that fails (disk full,
/// permission lost mid-run) flips the store into *degraded* mode — no
/// further writes are attempted, one warning is queued for the caller
/// to surface ([`DiskStore::take_warning`]), and every read keeps
/// working, because the index holding previously-persisted artifacts
/// is in memory. Analysis results are never affected; only durability
/// of new artifacts is lost.
pub(crate) struct DiskStore {
    path: PathBuf,
    inner: Mutex<Inner>,
}

impl DiskStore {
    /// Opens (or creates) the artifact log in `dir`, loading every
    /// valid record into the in-memory index. Recoverable problems —
    /// version/schema mismatch, CRC failure, truncated tail — are
    /// reported as warnings and resolved by truncating the log back to
    /// its valid prefix; only genuine I/O errors fail the open.
    pub(crate) fn open(dir: &Path) -> io::Result<(DiskStore, Vec<String>)> {
        fs::create_dir_all(dir)?;
        let path = dir.join(LOG_NAME);
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(&path)?;
        let mut warnings = Vec::new();

        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        let header_ok = bytes.len() >= HEADER_LEN as usize
            && &bytes[..8] == MAGIC
            && bytes[8..12] == FORMAT_VERSION.to_le_bytes()
            && bytes[12..28] == schema_fingerprint().to_bytes();
        if !bytes.is_empty() && !header_ok {
            warnings.push(format!(
                "artifact store {}: incompatible header; starting fresh",
                path.display()
            ));
        }
        if !header_ok {
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(MAGIC)?;
            file.write_all(&FORMAT_VERSION.to_le_bytes())?;
            file.write_all(&schema_fingerprint().to_bytes())?;
            file.flush()?;
            let inner = Inner {
                sink: Box::new(file),
                index: HashMap::new(),
                degraded: false,
                pending_warning: None,
            };
            return Ok((DiskStore { path, inner: Mutex::new(inner) }, warnings));
        }

        // Scan records; stop (and truncate) at the first invalid one.
        let mut index: HashMap<(PhaseId, Fingerprint), Arc<Vec<u8>>> = HashMap::new();
        let mut off = HEADER_LEN as usize;
        let valid_end = loop {
            if off == bytes.len() {
                break off; // clean end of log
            }
            let Some(rec) = parse_record(&bytes[off..]) else {
                warnings.push(format!(
                    "artifact store {}: corrupt or truncated record at byte {off}; \
                     dropping the log tail ({} artifacts kept)",
                    path.display(),
                    index.len()
                ));
                break off;
            };
            let (key, payload, consumed) = rec;
            index.insert(key, Arc::new(payload.to_vec()));
            off += consumed;
        };
        if valid_end < bytes.len() {
            file.set_len(valid_end as u64)?;
        }
        file.seek(SeekFrom::End(0))?;
        let inner = Inner { sink: Box::new(file), index, degraded: false, pending_warning: None };
        Ok((DiskStore { path, inner: Mutex::new(inner) }, warnings))
    }

    /// The log file's path (for warnings and reports).
    pub(crate) fn path(&self) -> &Path {
        &self.path
    }

    /// Number of artifacts currently held on disk.
    pub(crate) fn len(&self) -> usize {
        self.inner.lock().unwrap().index.len()
    }

    /// The stored bytes for a key, if present.
    pub(crate) fn get(&self, phase: PhaseId, fp: Fingerprint) -> Option<Arc<Vec<u8>>> {
        self.inner.lock().unwrap().index.get(&(phase, fp)).cloned()
    }

    /// Drops a key from the in-memory index (after a decode failure);
    /// the on-disk record stays but will be recomputed past.
    pub(crate) fn evict(&self, phase: PhaseId, fp: Fingerprint) {
        self.inner.lock().unwrap().index.remove(&(phase, fp));
    }

    /// Appends one artifact record and flushes it. A key already
    /// present is not rewritten (same fingerprint ⇒ same bytes).
    ///
    /// Best-effort: a write failure degrades the store to in-memory
    /// operation (see the type docs) instead of surfacing an error —
    /// persistence problems must never fail an analysis job.
    pub(crate) fn append(&self, phase: PhaseId, fp: Fingerprint, artifact: &[u8]) {
        let mut inner = self.inner.lock().unwrap();
        if inner.degraded || inner.index.contains_key(&(phase, fp)) {
            return;
        }
        let mut payload = Vec::with_capacity(PAYLOAD_KEY_LEN + artifact.len());
        payload.push(phase.index() as u8);
        payload.extend_from_slice(&fp.to_bytes());
        payload.extend_from_slice(artifact);
        let mut record = Vec::with_capacity(RECORD_HEADER_LEN as usize + payload.len());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&crc32(&payload).to_le_bytes());
        record.extend_from_slice(&payload);
        let wrote = inner.sink.write_all(&record).and_then(|()| inner.sink.flush());
        match wrote {
            Ok(()) => {
                inner.index.insert((phase, fp), Arc::new(artifact.to_vec()));
            }
            Err(e) => {
                // A partial record may now sit at the log's tail; the
                // CRC scan on the next open truncates it away.
                inner.degraded = true;
                inner.pending_warning = Some(format!(
                    "artifact store {}: write failed ({e}); persistence disabled, \
                     continuing in-memory",
                    self.path.display()
                ));
            }
        }
    }

    /// Whether a write failure has switched the store to in-memory-only
    /// operation.
    pub(crate) fn is_degraded(&self) -> bool {
        self.inner.lock().unwrap().degraded
    }

    /// The degradation warning, delivered at most once (so callers can
    /// surface it without spamming one line per lost artifact).
    pub(crate) fn take_warning(&self) -> Option<String> {
        self.inner.lock().unwrap().pending_warning.take()
    }

    /// Flushes the log sink (a no-op after degradation). Appends flush
    /// record-by-record already; this is the explicit drain-time sync
    /// for the daemon's shutdown path.
    pub(crate) fn flush(&self) {
        let mut inner = self.inner.lock().unwrap();
        if !inner.degraded {
            let _ = inner.sink.flush();
        }
    }

    /// Swaps the append sink — test hook for fault injection.
    #[cfg(test)]
    pub(crate) fn set_sink_for_tests(&self, sink: Box<dyn LogSink>) {
        self.inner.lock().unwrap().sink = sink;
    }
}

/// Parses one record at the start of `bytes`. Returns the key, the
/// artifact payload and the total bytes consumed — or `None` if the
/// record is truncated, CRC-corrupt, or names an unknown phase.
#[allow(clippy::type_complexity)]
fn parse_record(bytes: &[u8]) -> Option<((PhaseId, Fingerprint), &[u8], usize)> {
    let head = RECORD_HEADER_LEN as usize;
    if bytes.len() < head {
        return None;
    }
    let len = u32::from_le_bytes(bytes[..4].try_into().ok()?) as usize;
    let crc = u32::from_le_bytes(bytes[4..8].try_into().ok()?);
    if len < PAYLOAD_KEY_LEN || bytes.len() - head < len {
        return None;
    }
    let payload = &bytes[head..head + len];
    if crc32(payload) != crc {
        return None;
    }
    let phase = PhaseId::from_index(payload[0] as usize)?;
    let fp = Fingerprint::from_bytes(payload[1..17].try_into().ok()?);
    Some(((phase, fp), &payload[PAYLOAD_KEY_LEN..], head + len))
}

/// Serializes a type-erased phase artifact into its on-disk form.
/// Returns `None` only if the stored value is not the type this phase
/// is known to produce (a programming error elsewhere; the caller then
/// simply skips persistence).
pub(crate) fn encode_artifact(phase: PhaseId, any: &(dyn Any + Send + Sync)) -> Option<Vec<u8>> {
    fn enc<T: Codec + 'static>(any: &(dyn Any + Send + Sync)) -> Option<Vec<u8>> {
        any.downcast_ref::<T>().map(encode_value)
    }
    match phase {
        PhaseId::Assemble => enc::<stamp_isa::Program>(any),
        PhaseId::Cfg => enc::<stamp_cfg::Cfg>(any),
        PhaseId::Context => enc::<stamp_ai::Icfg>(any),
        PhaseId::Value => enc::<stamp_value::FrozenValueAnalysis>(any),
        PhaseId::LoopBound => enc::<stamp_loopbound::LoopBoundAnalysis>(any),
        PhaseId::Cache => enc::<stamp_cache::CacheAnalysis>(any),
        PhaseId::Pipeline => enc::<stamp_pipeline::PipelineAnalysis>(any),
        PhaseId::Path => enc::<stamp_path::WcetResult>(any),
        PhaseId::Stack => enc::<crate::stack_tool::StackReport>(any),
        PhaseId::Summary => enc::<stamp_path::SegmentSummary>(any),
        // The payload is already the summary's canonical byte form; the
        // consuming analysis validates it structurally on decode.
        PhaseId::Uarch => enc::<Vec<u8>>(any),
    }
}

/// Deserializes on-disk artifact bytes back into the type-erased form
/// the in-memory store shares between jobs.
pub(crate) fn decode_artifact(
    phase: PhaseId,
    bytes: &[u8],
) -> Result<Arc<dyn Any + Send + Sync>, CodecError> {
    fn dec<T: Codec + Send + Sync + 'static>(
        bytes: &[u8],
    ) -> Result<Arc<dyn Any + Send + Sync>, CodecError> {
        decode_value::<T>(bytes).map(|v| Arc::new(v) as Arc<dyn Any + Send + Sync>)
    }
    match phase {
        PhaseId::Assemble => dec::<stamp_isa::Program>(bytes),
        PhaseId::Cfg => dec::<stamp_cfg::Cfg>(bytes),
        PhaseId::Context => dec::<stamp_ai::Icfg>(bytes),
        PhaseId::Value => dec::<stamp_value::FrozenValueAnalysis>(bytes),
        PhaseId::LoopBound => dec::<stamp_loopbound::LoopBoundAnalysis>(bytes),
        PhaseId::Cache => dec::<stamp_cache::CacheAnalysis>(bytes),
        PhaseId::Pipeline => dec::<stamp_pipeline::PipelineAnalysis>(bytes),
        PhaseId::Path => dec::<stamp_path::WcetResult>(bytes),
        PhaseId::Stack => dec::<crate::stack_tool::StackReport>(bytes),
        PhaseId::Summary => dec::<stamp_path::SegmentSummary>(bytes),
        PhaseId::Uarch => dec::<Vec<u8>>(bytes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(n: u64) -> Fingerprint {
        let mut f = Fp::new("disk-test");
        f.u64(n);
        f.finish()
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("stamp-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn records_survive_reopen() {
        let dir = tmp_dir("reopen");
        {
            let (store, warnings) = DiskStore::open(&dir).unwrap();
            assert!(warnings.is_empty());
            store.append(PhaseId::Cfg, fp(1), b"cfg-bytes");
            store.append(PhaseId::Value, fp(2), b"value-bytes");
            assert_eq!(store.len(), 2);
        }
        let (store, warnings) = DiskStore::open(&dir).unwrap();
        assert!(warnings.is_empty());
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(PhaseId::Cfg, fp(1)).unwrap().as_slice(), b"cfg-bytes");
        assert_eq!(store.get(PhaseId::Value, fp(2)).unwrap().as_slice(), b"value-bytes");
        assert!(store.get(PhaseId::Cfg, fp(2)).is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn duplicate_appends_are_idempotent() {
        let dir = tmp_dir("dedup");
        let (store, _) = DiskStore::open(&dir).unwrap();
        store.append(PhaseId::Cfg, fp(1), b"once");
        let size_after_first = fs::metadata(store.path()).unwrap().len();
        store.append(PhaseId::Cfg, fp(1), b"once");
        assert_eq!(fs::metadata(store.path()).unwrap().len(), size_after_first);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_tail_is_dropped_with_a_warning() {
        let dir = tmp_dir("truncate");
        let path = {
            let (store, _) = DiskStore::open(&dir).unwrap();
            store.append(PhaseId::Cfg, fp(1), b"kept");
            store.append(PhaseId::Value, fp(2), b"will-be-cut");
            store.path().to_path_buf()
        };
        // Simulate a crash mid-append: cut the last record short.
        let len = fs::metadata(&path).unwrap().len();
        OpenOptions::new().write(true).open(&path).unwrap().set_len(len - 3).unwrap();
        let (store, warnings) = DiskStore::open(&dir).unwrap();
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(warnings[0].contains("truncated"), "{warnings:?}");
        assert!(store.get(PhaseId::Cfg, fp(1)).is_some(), "valid prefix survives");
        assert!(store.get(PhaseId::Value, fp(2)).is_none(), "cut record dropped");
        // The log was repaired: reopening is clean and appendable again.
        drop(store);
        let (store, warnings) = DiskStore::open(&dir).unwrap();
        assert!(warnings.is_empty(), "{warnings:?}");
        store.append(PhaseId::Value, fp(2), b"recomputed");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_fails_crc_and_truncates() {
        let dir = tmp_dir("bitflip");
        let path = {
            let (store, _) = DiskStore::open(&dir).unwrap();
            store.append(PhaseId::Cfg, fp(1), b"first");
            store.append(PhaseId::Value, fp(2), b"second");
            store.path().to_path_buf()
        };
        // Flip one bit inside the second record's payload.
        let mut bytes = fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let (store, warnings) = DiskStore::open(&dir).unwrap();
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(store.get(PhaseId::Cfg, fp(1)).is_some());
        assert!(store.get(PhaseId::Value, fp(2)).is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn alien_header_starts_fresh() {
        let dir = tmp_dir("alien");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(LOG_NAME), b"not an artifact log at all").unwrap();
        let (store, warnings) = DiskStore::open(&dir).unwrap();
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("incompatible header"), "{warnings:?}");
        assert_eq!(store.len(), 0);
        store.append(PhaseId::Cfg, fp(1), b"fresh");
        drop(store);
        let (store, warnings) = DiskStore::open(&dir).unwrap();
        assert!(warnings.is_empty());
        assert_eq!(store.len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    /// A sink whose every write fails — ENOSPC, a yanked volume, lost
    /// permissions; the cause does not matter to the degradation path.
    struct FailingSink;

    impl Write for FailingSink {
        fn write(&mut self, _: &[u8]) -> io::Result<usize> {
            Err(io::Error::other("no space left on device"))
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_failure_degrades_to_memory_with_one_warning() {
        let dir = tmp_dir("degrade");
        let (store, _) = DiskStore::open(&dir).unwrap();
        store.append(PhaseId::Cfg, fp(1), b"persisted");
        assert_eq!(store.len(), 1);
        assert!(!store.is_degraded());

        store.set_sink_for_tests(Box::new(FailingSink));
        store.append(PhaseId::Value, fp(2), b"lost");
        assert!(store.is_degraded());
        let warning = store.take_warning().expect("first failure queues a warning");
        assert!(warning.contains("persistence disabled"), "{warning}");
        assert!(store.take_warning().is_none(), "the warning is delivered once");

        // Reads keep working: the pre-failure artifact is still served
        // from the in-memory index, the lost one is simply absent.
        assert!(store.get(PhaseId::Cfg, fp(1)).is_some());
        assert!(store.get(PhaseId::Value, fp(2)).is_none());

        // Further appends are skipped silently — no error, no second
        // warning, no growth.
        store.append(PhaseId::Stack, fp(3), b"also-lost");
        assert!(store.take_warning().is_none());
        assert_eq!(store.len(), 1);
        store.flush(); // drain-time flush is a no-op when degraded

        // The on-disk prefix written before the fault stays valid for
        // the next process.
        drop(store);
        let (store, warnings) = DiskStore::open(&dir).unwrap();
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(store.len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn artifact_codecs_round_trip_through_the_log() {
        // End-to-end over a real artifact: assemble a program, persist
        // it through the log, decode it back type-erased.
        let program = stamp_isa::asm::assemble(".text\nmain: li r1, 7\nhalt\n").unwrap();
        let bytes = encode_artifact(PhaseId::Assemble, &program).unwrap();
        let dir = tmp_dir("e2e");
        {
            let (store, _) = DiskStore::open(&dir).unwrap();
            store.append(PhaseId::Assemble, fp(1), &bytes);
        }
        let (store, _) = DiskStore::open(&dir).unwrap();
        let loaded = store.get(PhaseId::Assemble, fp(1)).unwrap();
        let any = decode_artifact(PhaseId::Assemble, &loaded).unwrap();
        let back = any.downcast_ref::<stamp_isa::Program>().unwrap();
        assert_eq!(back.entry, program.entry);
        assert_eq!(stamp_codec::encode_value(back), stamp_codec::encode_value(&program));
        // Wrong phase for the same bytes must fail decoding, not panic.
        assert!(decode_artifact(PhaseId::Path, &loaded).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
