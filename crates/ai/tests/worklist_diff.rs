//! Differential properties of the indexed worklist solver.
//!
//! The production solver (`solve`: RPO bucket queue, copy-on-write edge
//! propagation, no re-join round-trip) must be observationally identical
//! to the retained naive reference solver (`solve_reference`) — same
//! per-node entry/exit states, same `evaluations` count, same
//! infeasible-edge set — on randomly generated programs from
//! `stamp_suite`, under two transfer functions:
//!
//! * a chaotic finite-lattice transfer with edge-dependent kills, which
//!   stresses worklist ordering and the infeasible-edge bookkeeping;
//! * the real value analysis (`ValueTransfer`), which stresses widening,
//!   branch refinement and the copy-on-write `AState` representation.

use std::borrow::Cow;
use std::rc::Rc;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use stamp_ai::{
    solve, solve_reference, Domain, IEdge, IEdgeKind, Icfg, NodeId, Transfer, VivuConfig,
};
use stamp_cfg::CfgBuilder;
use stamp_hw::HwConfig;
use stamp_isa::asm::assemble;
use stamp_suite::{generate, GenConfig};
use stamp_value::{DomainKind, ValueTransfer};

/// A small powerset domain over `u64` (finite chains, joins = union).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
struct Bits(u64);

impl Domain for Bits {
    fn join_from(&mut self, other: &Self) -> bool {
        let before = self.0;
        self.0 |= other.0;
        self.0 != before
    }

    fn le(&self, other: &Self) -> bool {
        self.0 & !other.0 == 0
    }
}

/// A transfer with node-dependent generation and edge-dependent kills:
/// every node ORs in a node-specific bit, and edges whose id hits a
/// seed-selected residue class are declared infeasible. Nothing about it
/// is monotone-friendly beyond what the framework requires, which makes
/// it a good order-sensitivity probe.
struct Chaotic {
    seed: u64,
}

impl Transfer for Chaotic {
    type State = Bits;

    fn boundary(&self) -> Bits {
        Bits(1)
    }

    fn transfer(&mut self, _icfg: &Icfg, node: NodeId, input: &Bits) -> Bits {
        Bits(input.0 | 1 << (node.index() % 63) | self.seed & 0xF0)
    }

    fn edge<'s>(&mut self, _icfg: &Icfg, e: &IEdge, s: &'s Bits) -> Option<Cow<'s, Bits>> {
        if e.id.index() as u64 % 7 == self.seed % 7 {
            return None;
        }
        // Exercise both Cow variants: refine (owned) on back edges,
        // pass-through (borrowed) everywhere else.
        if matches!(e.kind, IEdgeKind::Intra { back_edge_of: Some(_), .. }) {
            Some(Cow::Owned(Bits(s.0 | 1 << 62)))
        } else {
            Some(Cow::Borrowed(s))
        }
    }
}

fn build_icfg(src: &str) -> Option<Icfg> {
    let p = assemble(src).ok()?;
    let cfg = CfgBuilder::new(&p).build().ok()?;
    Icfg::build(&cfg, &VivuConfig::default()).ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn chaotic_transfer_matches_reference(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let src = generate(&mut rng, &GenConfig::default());
        let Some(icfg) = build_icfg(&src) else { return Ok(()) };
        for widen_delay in [0u32, 2] {
            let fp = solve(&icfg, &mut Chaotic { seed }, widen_delay);
            let rf = solve_reference(&icfg, &mut Chaotic { seed }, widen_delay);
            prop_assert!(
                fp.equivalent(&rf),
                "solver divergence on seed {seed} (widen_delay {widen_delay}): \
                 {} vs {} evaluations, {:?} vs {:?} infeasible",
                fp.evaluations,
                rf.evaluations,
                fp.infeasible_edges,
                rf.infeasible_edges,
            );
        }
    }

    #[test]
    fn value_analysis_matches_reference(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let src = generate(&mut rng, &GenConfig::default());
        let Ok(program) = assemble(&src) else { return Ok(()) };
        let Ok(cfg) = CfgBuilder::new(&program).build() else { return Ok(()) };
        let Ok(icfg) = Icfg::build(&cfg, &VivuConfig::default()) else { return Ok(()) };
        let hw = HwConfig::default();
        let thresholds = Rc::new(vec![0, 16, 256, hw.mem.stack_top()]);
        let mut t1 =
            ValueTransfer::new(&program, &hw, &cfg, DomainKind::Strided, Rc::clone(&thresholds));
        let mut t2 =
            ValueTransfer::new(&program, &hw, &cfg, DomainKind::Strided, Rc::clone(&thresholds));
        let fp = solve(&icfg, &mut t1, 2);
        let rf = solve_reference(&icfg, &mut t2, 2);
        prop_assert!(
            fp.equivalent(&rf),
            "value-analysis divergence on seed {seed}: {} vs {} evaluations",
            fp.evaluations,
            rf.evaluations,
        );
    }
}

#[test]
fn equivalence_oracle_rejects_differences() {
    // `Fixpoint::equivalent` must actually discriminate: perturbing the
    // transfer changes the fixpoint and the oracle must notice.
    let src = ".text\nmain: li r1, 4\nloop: addi r1, r1, -1\nbnez r1, loop\nhalt\n";
    let icfg = build_icfg(src).expect("builds");
    let a = solve(&icfg, &mut Chaotic { seed: 1 }, 2);
    let b = solve(&icfg, &mut Chaotic { seed: 2 }, 2);
    assert!(!a.equivalent(&b), "different kills must differ");
    let c = solve_reference(&icfg, &mut Chaotic { seed: 1 }, 2);
    assert!(a.equivalent(&c));
}
