//! Structural properties of the supergraph expansion.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use stamp_ai::{Frame, IEdgeKind, Icfg, VivuConfig};
use stamp_cfg::CfgBuilder;
use stamp_isa::asm::assemble;
use stamp_suite::{generate, GenConfig};

fn build(src: &str, vivu: &VivuConfig) -> (stamp_cfg::Cfg, Icfg) {
    let p = assemble(src).expect("assembles");
    let cfg = CfgBuilder::new(&p).build().expect("builds");
    let icfg = Icfg::build(&cfg, vivu).expect("expands");
    (cfg, icfg)
}

/// Structural invariants that must hold for every expansion.
fn check_invariants(cfg: &stamp_cfg::Cfg, icfg: &Icfg) {
    // Every node's (block, ctx) is unique and indexed.
    for nd in icfg.nodes() {
        assert_eq!(icfg.node_of(nd.block, nd.ctx), Some(nd.id));
        assert!(icfg.nodes_of_block(nd.block).contains(&nd.id));
    }
    // Edges connect existing nodes, and intra edges stay inside one
    // function while call/return edges cross function boundaries.
    for e in icfg.edges() {
        let from = icfg.node(e.from);
        let to = icfg.node(e.to);
        match e.kind {
            IEdgeKind::Intra { .. } => {
                assert_eq!(
                    cfg.block(from.block).func,
                    cfg.block(to.block).func,
                    "intra edge crosses functions"
                );
            }
            IEdgeKind::Call { .. } | IEdgeKind::Return { .. } => {
                assert_ne!(cfg.block(from.block).func, cfg.block(to.block).func);
            }
        }
    }
    // Call depth never exceeds the configured maximum.
    for nd in icfg.nodes() {
        assert!(icfg.ctxs().get(nd.ctx).call_depth() <= 16);
    }
    // The entry has the root context.
    assert_eq!(icfg.node(icfg.entry()).ctx, icfg.ctxs().root());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generated_programs_expand_consistently(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let src = generate(&mut rng, &GenConfig::default());
        for vivu in [VivuConfig::default(), VivuConfig::no_unrolling()] {
            let (cfg, icfg) = build(&src, &vivu);
            check_invariants(&cfg, &icfg);
            // Without unrolling, contexts are call-strings only: no node
            // carries a Loop frame.
            if vivu.peel == 0 {
                for nd in icfg.nodes() {
                    let calls_only = icfg
                        .ctxs()
                        .get(nd.ctx)
                        .frames()
                        .iter()
                        .all(|f| matches!(f, Frame::Call { .. }));
                    prop_assert!(calls_only);
                }
            }
        }
    }
}

#[test]
fn deeper_peeling_distinguishes_more_iterations() {
    let src = ".text\nmain: li r1, 9\nloop: addi r1, r1, -1\nbnez r1, loop\nhalt\n";
    let mut node_counts = Vec::new();
    for peel in [0u8, 1, 2, 3] {
        let vivu = VivuConfig { peel, ..VivuConfig::default() };
        let (cfg, icfg) = build(src, &vivu);
        check_invariants(&cfg, &icfg);
        node_counts.push(icfg.nodes().len());
        // The loop block appears once per iteration class.
        let p = assemble(src).unwrap();
        let header = cfg.block_at(p.symbols.addr_of("loop").unwrap()).unwrap();
        assert_eq!(icfg.nodes_of_block(header).len(), peel as usize + 1);
    }
    assert!(node_counts.windows(2).all(|w| w[0] < w[1]), "{node_counts:?}");
}

#[test]
fn peel_two_back_edges_step_through_classes() {
    let src = ".text\nmain: li r1, 9\nloop: addi r1, r1, -1\nbnez r1, loop\nhalt\n";
    let vivu = VivuConfig { peel: 2, ..VivuConfig::default() };
    let (_cfg, icfg) = build(src, &vivu);
    // Back edges: #0→#1, #1→#2, #2→#2 (self loop).
    let mut transitions = Vec::new();
    for e in icfg.edges() {
        if let IEdgeKind::Intra { back_edge_of: Some(_), .. } = e.kind {
            let from_iter = iter_class(icfg.ctxs().get(icfg.node(e.from).ctx).frames());
            let to_iter = iter_class(icfg.ctxs().get(icfg.node(e.to).ctx).frames());
            transitions.push((from_iter, to_iter));
        }
    }
    transitions.sort_unstable();
    assert_eq!(transitions, vec![(0, 1), (1, 2), (2, 2)]);
}

fn iter_class(frames: &[Frame]) -> u8 {
    match frames.last() {
        Some(Frame::Loop { iter, .. }) => *iter,
        _ => u8::MAX,
    }
}

#[test]
fn context_explosion_is_detected() {
    // Many nested loops with a tiny context budget.
    let src = "\
        .text
        main: li r1, 2
        l1:   li r2, 2
        l2:   li r3, 2
        l3:   addi r3, r3, -1
              bnez r3, l3
              addi r2, r2, -1
              bnez r2, l2
              addi r1, r1, -1
              bnez r1, l1
              halt
    ";
    let p = assemble(src).unwrap();
    let cfg = CfgBuilder::new(&p).build().unwrap();
    let vivu = VivuConfig { peel: 3, max_contexts: 4, ..VivuConfig::default() };
    let err = Icfg::build(&cfg, &vivu).unwrap_err();
    assert!(matches!(err, stamp_ai::IcfgError::ContextExplosion { .. }));
}
