//! Generic worklist fixpoint solver over the supergraph.

use std::collections::BTreeSet;

use crate::domain::Domain;
use crate::icfg::{IEdge, IEdgeKind, Icfg, NodeId};

/// A forward dataflow problem over an [`Icfg`].
///
/// The solver computes, for every node, the least fixpoint of
///
/// ```text
/// in(n)  = ⊔ { edge(e, out(src(e))) | e ∈ preds(n) }   (⊔ boundary at entry)
/// out(n) = transfer(n, in(n))
/// ```
///
/// with widening applied at back-edge targets.
pub trait Transfer {
    /// The abstract state attached to node boundaries.
    type State: Domain;

    /// The state holding at the task entry.
    fn boundary(&self) -> Self::State;

    /// Transfer through the instructions of a node's block.
    fn transfer(&mut self, icfg: &Icfg, node: NodeId, input: &Self::State) -> Self::State;

    /// Transfer along an edge (e.g. branch refinement). Returning `None`
    /// marks the edge infeasible: nothing is propagated.
    ///
    /// The default propagates the state unchanged.
    fn edge(&mut self, icfg: &Icfg, edge: &IEdge, state: &Self::State) -> Option<Self::State> {
        let _ = (icfg, edge);
        Some(state.clone())
    }
}

/// The result of a fixpoint computation: per-node entry/exit states.
/// `None` means the node was found unreachable.
#[derive(Clone, Debug)]
pub struct Fixpoint<S> {
    ins: Vec<Option<S>>,
    outs: Vec<Option<S>>,
    /// Edges proven infeasible by the edge transfer (never propagated a
    /// state in the final fixpoint).
    pub infeasible_edges: Vec<crate::icfg::IEdgeId>,
    /// Number of node evaluations performed (for the scaling experiment).
    pub evaluations: u64,
}

impl<S> Fixpoint<S> {
    /// The state at a node's entry, if reachable.
    pub fn input(&self, n: NodeId) -> Option<&S> {
        self.ins[n.index()].as_ref()
    }

    /// The state at a node's exit, if reachable.
    pub fn output(&self, n: NodeId) -> Option<&S> {
        self.outs[n.index()].as_ref()
    }
}

/// Runs the worklist algorithm to a fixpoint.
///
/// Nodes are processed in reverse post-order priority. Widening is
/// applied at targets of loop back edges after `widen_delay` joins to
/// preserve precision on the peeled iterations.
pub fn solve<T: Transfer>(icfg: &Icfg, transfer: &mut T, widen_delay: u32) -> Fixpoint<T::State> {
    let n = icfg.nodes().len();
    let mut ins: Vec<Option<T::State>> = vec![None; n];
    let mut outs: Vec<Option<T::State>> = vec![None; n];
    let mut join_count: Vec<u32> = vec![0; n];
    let mut evaluations: u64 = 0;

    // Widening points: targets of back edges (and of any retreating edge
    // by RPO, to be safe with return-edge cycles).
    let mut widen_at = vec![false; n];
    for e in icfg.edges() {
        let retreating = icfg.rpo_index(e.to) <= icfg.rpo_index(e.from);
        if retreating || matches!(e.kind, IEdgeKind::Intra { back_edge_of: Some(_), .. }) {
            widen_at[e.to.index()] = true;
        }
    }

    // Worklist ordered by RPO index (BTreeSet as a priority queue).
    let mut work: BTreeSet<(u32, NodeId)> = BTreeSet::new();
    let entry = icfg.entry();
    ins[entry.index()] = Some(transfer.boundary());
    work.insert((icfg.rpo_index(entry), entry));

    let mut edge_fired = vec![false; icfg.edges().len()];

    while let Some(&(prio, node)) = work.iter().next() {
        work.remove(&(prio, node));
        let input = match &ins[node.index()] {
            Some(s) => s.clone(),
            None => continue,
        };
        evaluations += 1;
        let out = transfer.transfer(icfg, node, &input);
        let out_changed = match &mut outs[node.index()] {
            Some(prev) => prev.join_from(&out),
            slot @ None => {
                *slot = Some(out);
                true
            }
        };
        if !out_changed && evaluations > 1 {
            // Re-evaluation did not grow the output: successors already
            // saw everything this node can produce.
            continue;
        }
        let out_state = outs[node.index()].clone().expect("just set");
        for e in icfg.succs(node) {
            let propagated = match transfer.edge(icfg, &e, &out_state) {
                Some(s) => s,
                None => continue,
            };
            edge_fired[e.id.index()] = true;
            let ti = e.to.index();
            let changed = match &mut ins[ti] {
                Some(prev) => {
                    join_count[ti] += 1;
                    if widen_at[ti] && join_count[ti] > widen_delay {
                        prev.widen_from(&propagated)
                    } else {
                        prev.join_from(&propagated)
                    }
                }
                slot @ None => {
                    *slot = Some(propagated);
                    true
                }
            };
            if changed {
                work.insert((icfg.rpo_index(e.to), e.to));
            }
        }
    }

    let infeasible_edges = icfg
        .edges()
        .iter()
        .filter(|e| !edge_fired[e.id.index()] && outs[e.from.index()].is_some())
        .map(|e| e.id)
        .collect();

    Fixpoint { ins, outs, infeasible_edges, evaluations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::VivuConfig;
    use crate::domain::tests::Bits;
    use crate::icfg::Icfg;
    use stamp_cfg::CfgBuilder;
    use stamp_isa::asm::assemble;

    /// Collects the set of visited block start addresses (as bit indices)
    /// — a reachability analysis.
    struct Reach;

    impl Transfer for Reach {
        type State = Bits;

        fn boundary(&self) -> Bits {
            Bits(1)
        }

        fn transfer(&mut self, icfg: &Icfg, node: NodeId, input: &Bits) -> Bits {
            let _ = icfg;
            Bits(input.0 | (1 << (node.index() + 1).min(63)))
        }
    }

    #[test]
    fn reaches_fixpoint_on_loop() {
        let src = ".text\nmain: li r1, 4\nloop: addi r1, r1, -1\nbnez r1, loop\nhalt\n";
        let p = assemble(src).unwrap();
        let cfg = CfgBuilder::new(&p).build().unwrap();
        let icfg = Icfg::build(&cfg, &VivuConfig::default()).unwrap();
        let fp = solve(&icfg, &mut Reach, 2);
        // Every reachable node has a state, and the exit sees the entry bit.
        for nd in icfg.nodes() {
            assert!(fp.input(nd.id).is_some(), "node {:?} unreachable", nd.id);
        }
        let exit = icfg.exits()[0];
        assert_eq!(fp.input(exit).unwrap().0 & 1, 1);
        assert!(fp.evaluations >= icfg.nodes().len() as u64);
    }

    #[test]
    fn infeasible_edges_reported() {
        struct KillFall;
        impl Transfer for KillFall {
            type State = Bits;
            fn boundary(&self) -> Bits {
                Bits(1)
            }
            fn transfer(&mut self, _i: &Icfg, _n: NodeId, s: &Bits) -> Bits {
                s.clone()
            }
            fn edge(&mut self, icfg: &Icfg, e: &IEdge, s: &Bits) -> Option<Bits> {
                // Refuse the fall-through edge out of the entry block.
                if e.from == icfg.entry() {
                    if let IEdgeKind::Intra { cfg_edge, .. } = e.kind {
                        let _ = cfg_edge;
                        return None;
                    }
                }
                Some(s.clone())
            }
        }
        let src = ".text\nmain: beq r0, r0, t\nf: halt\nt: halt\n";
        let p = assemble(src).unwrap();
        let cfg = CfgBuilder::new(&p).build().unwrap();
        let icfg = Icfg::build(&cfg, &VivuConfig::default()).unwrap();
        let fp = solve(&icfg, &mut KillFall, 2);
        assert_eq!(fp.infeasible_edges.len(), 2);
    }
}
