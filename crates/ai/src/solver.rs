//! Generic worklist fixpoint solver over the supergraph.
//!
//! Two implementations share the [`Transfer`] interface:
//!
//! * [`solve`] — the production solver: an index-based bucket priority
//!   queue keyed by reverse post-order with an `in_worklist` bitset, and
//!   copy-on-write edge propagation (states flow by reference unless an
//!   edge actually refines them);
//! * [`solve_reference`] — the naive textbook solver ( `BTreeSet`
//!   worklist, one owned state per propagated edge) retained as the
//!   executable specification. The differential property suite checks
//!   that both produce identical fixpoints, evaluation counts and
//!   infeasible-edge sets.

use std::borrow::Cow;
use std::collections::BTreeSet;

use crate::domain::Domain;
use crate::icfg::{IEdge, IEdgeKind, Icfg, NodeId};

/// A forward dataflow problem over an [`Icfg`].
///
/// The solver computes, for every node, the least fixpoint of
///
/// ```text
/// in(n)  = ⊔ { edge(e, out(src(e))) | e ∈ preds(n) }   (⊔ boundary at entry)
/// out(n) = transfer(n, in(n))
/// ```
///
/// with widening applied at back-edge targets.
pub trait Transfer {
    /// The abstract state attached to node boundaries.
    type State: Domain;

    /// The state holding at the task entry.
    fn boundary(&self) -> Self::State;

    /// Transfer through the instructions of a node's block.
    fn transfer(&mut self, icfg: &Icfg, node: NodeId, input: &Self::State) -> Self::State;

    /// Transfer along an edge (e.g. branch refinement). Returning `None`
    /// marks the edge infeasible: nothing is propagated.
    ///
    /// The default propagates the state unchanged **by reference** —
    /// implementations should return [`Cow::Borrowed`] whenever the edge
    /// does not refine the state, so the solver never clones on the
    /// common pass-through path.
    fn edge<'s>(
        &mut self,
        icfg: &Icfg,
        edge: &IEdge,
        state: &'s Self::State,
    ) -> Option<Cow<'s, Self::State>> {
        let _ = (icfg, edge);
        Some(Cow::Borrowed(state))
    }
}

/// The result of a fixpoint computation: per-node entry/exit states.
/// `None` means the node was found unreachable.
#[derive(Clone, Debug)]
pub struct Fixpoint<S> {
    ins: Vec<Option<S>>,
    outs: Vec<Option<S>>,
    /// Edges proven infeasible by the edge transfer (never propagated a
    /// state in the final fixpoint).
    pub infeasible_edges: Vec<crate::icfg::IEdgeId>,
    /// Number of node evaluations performed (for the scaling experiment).
    pub evaluations: u64,
}

impl<S> Fixpoint<S> {
    /// The state at a node's entry, if reachable.
    pub fn input(&self, n: NodeId) -> Option<&S> {
        self.ins[n.index()].as_ref()
    }

    /// The state at a node's exit, if reachable.
    pub fn output(&self, n: NodeId) -> Option<&S> {
        self.outs[n.index()].as_ref()
    }

    /// The raw per-node `(entry, exit)` state slices, indexed by node.
    /// Used to serialize a fixpoint into a thread-shareable artifact.
    pub fn states(&self) -> (&[Option<S>], &[Option<S>]) {
        (&self.ins, &self.outs)
    }

    /// Reassembles a fixpoint from per-node states (the inverse of
    /// [`Fixpoint::states`] plus the public bookkeeping fields).
    pub fn from_parts(
        ins: Vec<Option<S>>,
        outs: Vec<Option<S>>,
        infeasible_edges: Vec<crate::icfg::IEdgeId>,
        evaluations: u64,
    ) -> Fixpoint<S> {
        Fixpoint { ins, outs, infeasible_edges, evaluations }
    }
}

impl<S: Domain> Fixpoint<S> {
    /// Structural equivalence of two fixpoints (mutual `⊑` per node plus
    /// identical bookkeeping) — the oracle of the differential tests.
    pub fn equivalent(&self, other: &Fixpoint<S>) -> bool {
        let same_state = |a: &Option<S>, b: &Option<S>| match (a, b) {
            (None, None) => true,
            (Some(x), Some(y)) => x.le(y) && y.le(x),
            _ => false,
        };
        self.evaluations == other.evaluations
            && self.infeasible_edges == other.infeasible_edges
            && self.ins.len() == other.ins.len()
            && self.ins.iter().zip(&other.ins).all(|(a, b)| same_state(a, b))
            && self.outs.iter().zip(&other.outs).all(|(a, b)| same_state(a, b))
    }
}

/// The widening points of a graph: targets of back edges (and of any
/// retreating edge by RPO, to be safe with return-edge cycles).
pub(crate) fn widening_points(icfg: &Icfg) -> Vec<bool> {
    let mut widen_at = vec![false; icfg.nodes().len()];
    for e in icfg.edges() {
        let retreating = icfg.rpo_index(e.to) <= icfg.rpo_index(e.from);
        if retreating || matches!(e.kind, IEdgeKind::Intra { back_edge_of: Some(_), .. }) {
            widen_at[e.to.index()] = true;
        }
    }
    widen_at
}

/// An indexed bucket priority queue over reverse-post-order positions.
///
/// Because RPO indices are a bijection on reachable nodes, each bucket
/// holds at most one node, so the queue degenerates to a bitset over RPO
/// positions (doubling as the `in_worklist` membership test) plus a
/// cursor that only ever scans forward between re-insertions. Both
/// operations are O(1) amortized; no allocation happens after
/// construction.
pub(crate) struct RpoWorklist {
    /// One bit per RPO position; set = node is in the worklist.
    pending: Vec<u64>,
    /// The node occupying each RPO position.
    node_at: Vec<NodeId>,
    /// Lowest word that may contain a set bit.
    cursor: usize,
}

impl RpoWorklist {
    pub(crate) fn new(icfg: &Icfg) -> RpoWorklist {
        let n = icfg.nodes().len();
        let mut node_at = vec![NodeId(u32::MAX); n];
        for nd in icfg.nodes() {
            let r = icfg.rpo_index(nd.id);
            if r != u32::MAX {
                node_at[r as usize] = nd.id;
            }
        }
        RpoWorklist { pending: vec![0; n.div_ceil(64).max(1)], node_at, cursor: 0 }
    }

    /// Inserts the node with the given RPO index (no-op when present).
    pub(crate) fn insert(&mut self, rpo: u32) {
        debug_assert!(rpo != u32::MAX, "unreachable node scheduled");
        let (w, b) = (rpo as usize / 64, rpo as usize % 64);
        self.pending[w] |= 1 << b;
        self.cursor = self.cursor.min(w);
    }

    /// Removes and returns the node with the smallest RPO index.
    pub(crate) fn pop(&mut self) -> Option<NodeId> {
        while self.cursor < self.pending.len() {
            let word = self.pending[self.cursor];
            if word != 0 {
                let bit = word.trailing_zeros() as usize;
                self.pending[self.cursor] = word & (word - 1);
                return Some(self.node_at[self.cursor * 64 + bit]);
            }
            self.cursor += 1;
        }
        None
    }
}

/// Runs the worklist algorithm to a fixpoint.
///
/// Nodes are processed in reverse post-order priority. Widening is
/// applied at targets of loop back edges after `widen_delay` joins to
/// preserve precision on the peeled iterations.
///
/// States propagate along edges by reference ([`Transfer::edge`] returns
/// a [`Cow`]); an owned clone is made only when a successor's entry
/// state is first materialized. Results are identical to
/// [`solve_reference`] — see the differential tests.
pub fn solve<T: Transfer>(icfg: &Icfg, transfer: &mut T, widen_delay: u32) -> Fixpoint<T::State> {
    let n = icfg.nodes().len();
    let mut ins: Vec<Option<T::State>> = vec![None; n];
    let mut outs: Vec<Option<T::State>> = vec![None; n];
    let mut join_count: Vec<u32> = vec![0; n];
    let mut evaluations: u64 = 0;
    let widen_at = widening_points(icfg);

    let mut work = RpoWorklist::new(icfg);
    let entry = icfg.entry();
    ins[entry.index()] = Some(transfer.boundary());
    work.insert(icfg.rpo_index(entry));

    let mut edge_fired = vec![false; icfg.edges().len()];

    while let Some(node) = work.pop() {
        // Cancellation point: a runaway fixpoint (pathological widening
        // or a huge context product) must stay interruptible, so jobs
        // running under a deadline can report `timeout` instead of
        // wedging a worker. Throttled — a no-op on most iterations.
        stamp_exec::cancel::checkpoint();
        if ins[node.index()].is_none() {
            // A node can only be scheduled after its entry state was
            // materialized, so this is unreachable — but were it taken,
            // the join counter must go back to zero: joins that never
            // propagated must not consume the widening delay.
            join_count[node.index()] = 0;
            continue;
        }
        evaluations += 1;
        let out = {
            let input = ins[node.index()].as_ref().expect("checked above");
            transfer.transfer(icfg, node, input)
        };
        let out_changed = match &mut outs[node.index()] {
            Some(prev) => prev.join_from(&out),
            slot @ None => {
                *slot = Some(out);
                true
            }
        };
        if !out_changed && evaluations > 1 {
            // Re-evaluation did not grow the output: successors already
            // saw everything this node can produce.
            continue;
        }
        // `outs` is only read and `ins` only written below, so the
        // out-state flows to every successor without the re-join
        // clone round-trip the naive solver pays.
        let out_state = outs[node.index()].as_ref().expect("just set");
        for e in icfg.succs(node) {
            let propagated = match transfer.edge(icfg, &e, out_state) {
                Some(s) => s,
                None => continue,
            };
            edge_fired[e.id.index()] = true;
            let ti = e.to.index();
            let changed = match &mut ins[ti] {
                Some(prev) => {
                    join_count[ti] += 1;
                    if widen_at[ti] && join_count[ti] > widen_delay {
                        prev.widen_from(&propagated)
                    } else {
                        prev.join_from(&propagated)
                    }
                }
                slot @ None => {
                    *slot = Some(propagated.into_owned());
                    true
                }
            };
            if changed {
                work.insert(icfg.rpo_index(e.to));
            }
        }
    }

    let infeasible_edges = icfg
        .edges()
        .iter()
        .filter(|e| !edge_fired[e.id.index()] && outs[e.from.index()].is_some())
        .map(|e| e.id)
        .collect();

    Fixpoint { ins, outs, infeasible_edges, evaluations }
}

/// The naive reference solver: `BTreeSet`-as-priority-queue worklist and
/// an owned state per propagated edge, exactly as the kernel shipped
/// before the indexed worklist. Kept as the executable specification for
/// the differential property tests; never used on the hot path.
pub fn solve_reference<T: Transfer>(
    icfg: &Icfg,
    transfer: &mut T,
    widen_delay: u32,
) -> Fixpoint<T::State> {
    let n = icfg.nodes().len();
    let mut ins: Vec<Option<T::State>> = vec![None; n];
    let mut outs: Vec<Option<T::State>> = vec![None; n];
    let mut join_count: Vec<u32> = vec![0; n];
    let mut evaluations: u64 = 0;
    let widen_at = widening_points(icfg);

    let mut work: BTreeSet<(u32, NodeId)> = BTreeSet::new();
    let entry = icfg.entry();
    ins[entry.index()] = Some(transfer.boundary());
    work.insert((icfg.rpo_index(entry), entry));

    let mut edge_fired = vec![false; icfg.edges().len()];

    while let Some(&(prio, node)) = work.iter().next() {
        work.remove(&(prio, node));
        let input = match &ins[node.index()] {
            Some(s) => s.clone(),
            None => continue,
        };
        evaluations += 1;
        let out = transfer.transfer(icfg, node, &input);
        let out_changed = match &mut outs[node.index()] {
            Some(prev) => prev.join_from(&out),
            slot @ None => {
                *slot = Some(out);
                true
            }
        };
        if !out_changed && evaluations > 1 {
            continue;
        }
        let out_state = outs[node.index()].clone().expect("just set");
        for e in icfg.succs(node) {
            let propagated = match transfer.edge(icfg, &e, &out_state) {
                Some(s) => s.into_owned(),
                None => continue,
            };
            edge_fired[e.id.index()] = true;
            let ti = e.to.index();
            let changed = match &mut ins[ti] {
                Some(prev) => {
                    join_count[ti] += 1;
                    if widen_at[ti] && join_count[ti] > widen_delay {
                        prev.widen_from(&propagated)
                    } else {
                        prev.join_from(&propagated)
                    }
                }
                slot @ None => {
                    *slot = Some(propagated);
                    true
                }
            };
            if changed {
                work.insert((icfg.rpo_index(e.to), e.to));
            }
        }
    }

    let infeasible_edges = icfg
        .edges()
        .iter()
        .filter(|e| !edge_fired[e.id.index()] && outs[e.from.index()].is_some())
        .map(|e| e.id)
        .collect();

    Fixpoint { ins, outs, infeasible_edges, evaluations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::VivuConfig;
    use crate::domain::tests::Bits;
    use crate::icfg::Icfg;
    use stamp_cfg::CfgBuilder;
    use stamp_isa::asm::assemble;

    /// Collects the set of visited block start addresses (as bit indices)
    /// — a reachability analysis.
    struct Reach;

    impl Transfer for Reach {
        type State = Bits;

        fn boundary(&self) -> Bits {
            Bits(1)
        }

        fn transfer(&mut self, icfg: &Icfg, node: NodeId, input: &Bits) -> Bits {
            let _ = icfg;
            Bits(input.0 | (1 << (node.index() + 1).min(63)))
        }
    }

    #[test]
    fn reaches_fixpoint_on_loop() {
        let src = ".text\nmain: li r1, 4\nloop: addi r1, r1, -1\nbnez r1, loop\nhalt\n";
        let p = assemble(src).unwrap();
        let cfg = CfgBuilder::new(&p).build().unwrap();
        let icfg = Icfg::build(&cfg, &VivuConfig::default()).unwrap();
        let fp = solve(&icfg, &mut Reach, 2);
        // Every reachable node has a state, and the exit sees the entry bit.
        for nd in icfg.nodes() {
            assert!(fp.input(nd.id).is_some(), "node {:?} unreachable", nd.id);
        }
        let exit = icfg.exits()[0];
        assert_eq!(fp.input(exit).unwrap().0 & 1, 1);
        assert!(fp.evaluations >= icfg.nodes().len() as u64);
        // The indexed solver agrees with the reference solver.
        let rf = solve_reference(&icfg, &mut Reach, 2);
        assert!(fp.equivalent(&rf));
    }

    #[test]
    fn infeasible_edges_reported() {
        struct KillFall;
        impl Transfer for KillFall {
            type State = Bits;
            fn boundary(&self) -> Bits {
                Bits(1)
            }
            fn transfer(&mut self, _i: &Icfg, _n: NodeId, s: &Bits) -> Bits {
                s.clone()
            }
            fn edge<'s>(&mut self, icfg: &Icfg, e: &IEdge, s: &'s Bits) -> Option<Cow<'s, Bits>> {
                // Refuse the fall-through edge out of the entry block.
                if e.from == icfg.entry() {
                    if let IEdgeKind::Intra { cfg_edge, .. } = e.kind {
                        let _ = cfg_edge;
                        return None;
                    }
                }
                Some(Cow::Borrowed(s))
            }
        }
        let src = ".text\nmain: beq r0, r0, t\nf: halt\nt: halt\n";
        let p = assemble(src).unwrap();
        let cfg = CfgBuilder::new(&p).build().unwrap();
        let icfg = Icfg::build(&cfg, &VivuConfig::default()).unwrap();
        let fp = solve(&icfg, &mut KillFall, 2);
        assert_eq!(fp.infeasible_edges.len(), 2);
        let rf = solve_reference(&icfg, &mut KillFall, 2);
        assert!(fp.equivalent(&rf));
    }

    #[test]
    fn rpo_worklist_pops_in_rpo_order() {
        let src = ".text\nmain: li r1, 4\nloop: addi r1, r1, -1\nbnez r1, loop\nhalt\n";
        let p = assemble(src).unwrap();
        let cfg = CfgBuilder::new(&p).build().unwrap();
        let icfg = Icfg::build(&cfg, &VivuConfig::default()).unwrap();
        let mut wl = RpoWorklist::new(&icfg);
        // Insert all nodes in reverse order, plus duplicates.
        let mut rpos: Vec<u32> = icfg.nodes().iter().map(|nd| icfg.rpo_index(nd.id)).collect();
        rpos.sort_unstable_by(|a, b| b.cmp(a));
        for &r in &rpos {
            wl.insert(r);
            wl.insert(r);
        }
        let mut popped = Vec::new();
        while let Some(nd) = wl.pop() {
            popped.push(icfg.rpo_index(nd));
        }
        let mut expect = rpos.clone();
        expect.sort_unstable();
        assert_eq!(popped, expect, "duplicates dropped, ascending order");
        // Re-insertion below the cursor is found again.
        wl.insert(rpos[0]);
        wl.insert(0);
        assert_eq!(wl.pop().map(|n| icfg.rpo_index(n)), Some(0));
        assert_eq!(wl.pop().map(|n| icfg.rpo_index(n)), Some(rpos[0]));
        assert!(wl.pop().is_none());
    }
}
