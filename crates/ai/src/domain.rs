//! The abstract-domain interface.

/// A join-semilattice abstract domain.
///
/// Implementations must satisfy, for all `a`, `b`:
///
/// * `join` is the least upper bound: after `a.join_from(&b)`,
///   `b.le(&a)` holds and the result is the smallest such element;
/// * `widen` over-approximates `join` and guarantees that every
///   ascending chain `a0, a0 ∇ a1, …` stabilizes in finitely many steps.
///
/// The framework calls `join_from`/`widen_from` in place and uses the
/// returned *changed* flag to drive the worklist.
///
/// # Cloning contract
///
/// The solver materializes one owned state per node entry, and
/// transfer functions typically clone their input once per evaluation,
/// so `Clone` sits on the hot path. Domains are expected to make it
/// cheap through structural sharing (`Rc`-backed copy-on-write of their
/// bulky parts, as `AState`'s abstract memory and the abstract caches
/// do); a shared component also lets `join_from` detect the
/// self-join/no-op case by pointer identity and return `false` without
/// touching the data.
pub trait Domain: Clone {
    /// Joins `other` into `self`; returns `true` if `self` changed.
    fn join_from(&mut self, other: &Self) -> bool;

    /// Widens `self` with `other`; returns `true` if `self` changed.
    ///
    /// The default is plain join, which is only correct for domains with
    /// finite ascending chains (e.g. abstract caches, pipeline states).
    fn widen_from(&mut self, other: &Self) -> bool {
        self.join_from(other)
    }

    /// Partial-order test: `true` if `self ⊑ other`.
    fn le(&self, other: &Self) -> bool;
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// A tiny powerset domain over `u64` bit sets, used to test the solver.
    #[derive(Clone, Debug, PartialEq, Eq, Default)]
    pub struct Bits(pub u64);

    impl Domain for Bits {
        fn join_from(&mut self, other: &Self) -> bool {
            let before = self.0;
            self.0 |= other.0;
            self.0 != before
        }

        fn le(&self, other: &Self) -> bool {
            self.0 & !other.0 == 0
        }
    }

    #[test]
    fn join_is_lub() {
        let mut a = Bits(0b01);
        assert!(a.join_from(&Bits(0b10)));
        assert_eq!(a, Bits(0b11));
        assert!(!a.join_from(&Bits(0b10)));
        assert!(Bits(0b10).le(&a));
        assert!(!a.le(&Bits(0b10)));
    }
}
