//! # stamp-ai — the abstract-interpretation framework
//!
//! Infrastructure shared by all static analyses in `stamp`, implementing
//! the method of Cousot & Cousot cited as \[1\] in the paper:
//!
//! * [`Domain`] — the join-semilattice interface abstract domains
//!   implement (value intervals, abstract caches, pipeline-state sets);
//! * [`VivuConfig`] / [`Ctx`] — **VIVU** execution contexts (*virtual
//!   inlining, virtual unrolling*): call strings crossed with
//!   first/rest loop-iteration tags. Contexts are what let the cache and
//!   pipeline analyses distinguish the first loop iteration (cold cache)
//!   from later ones (warm cache), the key to tight WCET bounds;
//! * [`Icfg`] — the context-expanded interprocedural CFG on which every
//!   analysis and the path analysis run;
//! * [`solve`] — a generic worklist fixpoint solver with widening at
//!   loop heads.
//!
//! # Example
//!
//! ```
//! use stamp_isa::asm::assemble;
//! use stamp_cfg::CfgBuilder;
//! use stamp_ai::{Icfg, VivuConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let p = assemble(".text\nmain: li r1, 2\nloop: addi r1, r1, -1\nbnez r1, loop\nhalt\n")?;
//! let cfg = CfgBuilder::new(&p).build()?;
//! let icfg = Icfg::build(&cfg, &VivuConfig::default())?;
//! // The loop body exists twice: once in the `first iteration` context
//! // and once in the `rest` context.
//! assert!(icfg.nodes().len() > cfg.blocks().len());
//! # Ok(())
//! # }
//! ```

mod context;
mod domain;
mod icfg;
mod regions;
mod solver;

pub use context::{Ctx, CtxId, CtxTable, Frame, VivuConfig};
pub use domain::Domain;
pub use icfg::{IEdge, IEdgeId, IEdgeKind, Icfg, IcfgError, Node, NodeId};
pub use regions::{carve_regions, solve_with_regions, RegionOutcome, RegionPlan, RegionSpec};
pub use solver::{solve, solve_reference, Fixpoint, Transfer};
