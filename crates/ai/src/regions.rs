//! Carving procedure-body regions out of the supergraph and solving
//! around them.
//!
//! A *region* is the set of nodes a single virtual-inlining call
//! instance contributed to the supergraph: the callee body expanded
//! under one `Call` frame, including any nested callees and loop
//! contexts it contains. When a region is single-entry (only the call
//! edge enters it), acyclic, RPO-contiguous and leaves only through
//! return edges to one continuation, the worklist solver evaluates its
//! nodes exactly once per entry state, in local RPO order, with no
//! interleaving from outside — so the whole region behaves like one big
//! transfer function. [`solve_with_regions`] exploits that: it mirrors
//! [`solve`](crate::solve) for every inline node but treats each carved
//! region as an atom whose effect is produced by a caller-supplied
//! summary callback (memoizable across structurally identical
//! instances).
//!
//! Everything here is *advisory*: [`carve_regions`] only emits regions
//! whose static shape guarantees the once-per-entry-state property, and
//! the driver still aborts (returns `None`) if an entry state grows
//! after its region was evaluated — the caller then falls back to the
//! monolithic solver, so soundness never depends on the decomposition.

use std::collections::{HashMap, HashSet};

use crate::context::Frame;
use crate::domain::Domain;
use crate::icfg::{IEdgeId, IEdgeKind, Icfg, NodeId};
use crate::solver::{widening_points, Fixpoint, RpoWorklist, Transfer};

/// Upper bound on region size in nodes. Larger call bodies stay inline:
/// their summaries would be too large to pay for themselves.
const MAX_REGION_NODES: usize = 512;

/// One carved call-instance region. `nodes` are in ascending RPO order
/// (entry first); `edges` and `exits` refer to positions in `nodes`.
#[derive(Clone, Debug)]
pub struct RegionSpec {
    /// The callee entry node (lowest RPO in the region).
    pub entry: NodeId,
    /// All region nodes, ascending by RPO.
    pub nodes: Vec<NodeId>,
    /// The unique call edge entering the region.
    pub call_edge: IEdgeId,
    /// Feasible region-internal edges as `(local_from, local_to, id)`
    /// with `local_from < local_to` (the region is acyclic and
    /// topologically ordered by construction).
    pub edges: Vec<(u32, u32, IEdgeId)>,
    /// Feasible return edges leaving the region: `(local_from, id)`.
    pub exits: Vec<(u32, IEdgeId)>,
    /// The caller-side continuation every exit edge targets (`None` when
    /// the body never returns, e.g. it halts).
    pub cont: Option<NodeId>,
}

/// A set of disjoint regions plus the node → region index map.
#[derive(Clone, Debug, Default)]
pub struct RegionPlan {
    /// Carved regions, ordered by entry RPO.
    pub regions: Vec<RegionSpec>,
    /// Per node index: position in `regions`, or [`RegionPlan::INLINE`].
    pub node_region: Vec<u32>,
}

impl RegionPlan {
    /// Marker in [`RegionPlan::node_region`] for nodes outside every
    /// region (solved inline).
    pub const INLINE: u32 = u32::MAX;

    /// Returns `true` if no regions were carved.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// Drops regions not satisfying `keep` (phases use this to discard
    /// regions they cannot summarize, e.g. bodies with unresolvable
    /// stores) and rebuilds the node map. Dropped regions' nodes are
    /// solved inline, which is always sound.
    pub fn retain(&mut self, mut keep: impl FnMut(&RegionSpec) -> bool) {
        self.regions.retain(|r| keep(r));
        for slot in &mut self.node_region {
            *slot = RegionPlan::INLINE;
        }
        for (i, r) in self.regions.iter().enumerate() {
            for n in &r.nodes {
                self.node_region[n.index()] = i as u32;
            }
        }
    }
}

/// The effect of one region evaluation, produced by the summary
/// callback of [`solve_with_regions`].
///
/// `reached` drives the edge bookkeeping: a feasible internal edge fired
/// iff its source was locally reachable, and `exit_outs[i]` must be
/// `Some` exactly when the corresponding exit node was reached.
#[derive(Clone, Debug)]
pub struct RegionOutcome<S> {
    /// Out-state at each exit, aligned with [`RegionSpec::exits`].
    pub exit_outs: Vec<Option<S>>,
    /// Locally reachable nodes, aligned with [`RegionSpec::nodes`].
    pub reached: Vec<bool>,
    /// Node evaluations the monolithic solver would have performed
    /// inside the region (the count of reached nodes).
    pub evaluations: u64,
}

/// Carves every summarizable call-instance region of `icfg`.
///
/// `infeasible` must be exactly the edge set the phase's
/// [`Transfer::edge`] rejects (for the microarchitectural phases, the
/// value analysis' infeasible edges): the carver ignores those edges
/// when checking region boundaries, which is only sound if the solver
/// ignores them too.
pub fn carve_regions(icfg: &Icfg, infeasible: &HashSet<IEdgeId>) -> RegionPlan {
    let ctxs = icfg.ctxs();
    // Group nodes by the prefix of their context up to (and including)
    // the first `Call` frame: all nodes of one outermost call instance —
    // nested callee bodies included — share that prefix.
    let mut groups: HashMap<&[Frame], Vec<NodeId>> = HashMap::new();
    for nd in icfg.nodes() {
        let frames = ctxs.get(nd.ctx).frames();
        if let Some(i) = frames.iter().position(|f| matches!(f, Frame::Call { .. })) {
            groups.entry(&frames[..=i]).or_default().push(nd.id);
        }
    }
    let mut regions = Vec::new();
    for ci in icfg.call_instances() {
        let inner = ctxs.get(ci.inner).frames();
        // Outermost instances only (one `Call` frame): nested instances
        // are interior to their outer region. A call site under a loop
        // is skipped — the call edge can re-fire with refined states,
        // which would break the once-per-entry-state property.
        if inner.iter().filter(|f| matches!(f, Frame::Call { .. })).count() != 1 {
            continue;
        }
        if inner.iter().any(|f| matches!(f, Frame::Loop { .. })) {
            continue;
        }
        let Some(group) = groups.get(inner) else { continue };
        if let Some(spec) = validate(icfg, infeasible, ci.site, group) {
            regions.push(spec);
        }
    }
    regions.sort_by_key(|r| icfg.rpo_index(r.entry));
    let mut node_region = vec![RegionPlan::INLINE; icfg.nodes().len()];
    for (i, r) in regions.iter().enumerate() {
        for n in &r.nodes {
            node_region[n.index()] = i as u32;
        }
    }
    RegionPlan { regions, node_region }
}

/// Checks the atomicity conditions for one candidate node group and
/// builds its [`RegionSpec`]; `None` means the group stays inline.
fn validate(
    icfg: &Icfg,
    infeasible: &HashSet<IEdgeId>,
    site: u32,
    group: &[NodeId],
) -> Option<RegionSpec> {
    if group.is_empty() || group.len() > MAX_REGION_NODES {
        return None;
    }
    let mut nodes = group.to_vec();
    if nodes.iter().any(|&n| icfg.rpo_index(n) == u32::MAX) {
        return None; // unreachable clone: leave inline (it costs nothing)
    }
    nodes.sort_by_key(|&n| icfg.rpo_index(n));
    let lo = icfg.rpo_index(nodes[0]);
    let hi = icfg.rpo_index(*nodes.last().expect("non-empty"));
    // RPO contiguity: with a bijective RPO this means no outside node
    // sits between two region nodes, so the bucket queue cannot
    // interleave foreign work into an episode.
    if (hi - lo) as usize + 1 != nodes.len() {
        return None;
    }
    let entry = nodes[0];
    let local: HashMap<NodeId, u32> =
        nodes.iter().enumerate().map(|(i, &n)| (n, i as u32)).collect();

    // Single entry: the only feasible edge from outside is one call
    // edge of this instance's site, targeting the entry node.
    let mut call_edge = None;
    for &n in &nodes {
        for e in icfg.preds(n) {
            if infeasible.contains(&e.id) || local.contains_key(&e.from) {
                continue;
            }
            if n != entry || !matches!(e.kind, IEdgeKind::Call { site: s } if s == site) {
                return None;
            }
            if call_edge.replace(e.id).is_some() {
                return None;
            }
        }
    }
    let call_edge = call_edge?;
    if icfg.rpo_index(icfg.edge(call_edge).from) >= lo {
        return None; // retreating call edge: the site could re-fire
    }

    // Internal edges strictly forward (acyclic); everything else leaving
    // the region must be a return edge of this site to one continuation
    // strictly after the region.
    let mut edges = Vec::new();
    let mut exits = Vec::new();
    let mut cont: Option<NodeId> = None;
    for (li, &n) in nodes.iter().enumerate() {
        let li = li as u32;
        for e in icfg.succs(n) {
            if infeasible.contains(&e.id) {
                continue;
            }
            if let Some(&lt) = local.get(&e.to) {
                if lt <= li {
                    return None;
                }
                edges.push((li, lt, e.id));
            } else {
                if !matches!(e.kind, IEdgeKind::Return { site: s } if s == site) {
                    return None;
                }
                if icfg.rpo_index(e.to) <= hi {
                    return None;
                }
                match cont {
                    None => cont = Some(e.to),
                    Some(c) if c == e.to => {}
                    Some(_) => return None,
                }
                exits.push((li, e.id));
            }
        }
    }
    Some(RegionSpec { entry, nodes, call_edge, edges, exits, cont })
}

/// Runs the worklist solver with carved regions treated as atoms.
///
/// Inline nodes are processed exactly as in [`solve`](crate::solve)
/// (same schedule, same evaluation counting, same edge bookkeeping).
/// When a region's entry is popped, `region_eval(region_index,
/// entry_state)` supplies the whole region's effect; its exit states are
/// propagated along the region's return edges and its evaluation count
/// is added to the total, so the resulting [`Fixpoint`] carries the
/// same `evaluations` and `infeasible_edges` the monolithic solver
/// would report. Region nodes keep `None` entry/exit states in the
/// returned fixpoint — their per-node results live in the summaries the
/// callback consulted.
///
/// Returns `None` — and the caller must fall back to the monolithic
/// solver — if `region_eval` declines, or if a region entry state grows
/// after the region was already evaluated (a second episode, which a
/// single summary application cannot reproduce).
pub fn solve_with_regions<T, F>(
    icfg: &Icfg,
    transfer: &mut T,
    plan: &RegionPlan,
    widen_delay: u32,
    mut region_eval: F,
) -> Option<Fixpoint<T::State>>
where
    T: Transfer,
    F: FnMut(usize, &T::State) -> Option<RegionOutcome<T::State>>,
{
    let n = icfg.nodes().len();
    let mut ins: Vec<Option<T::State>> = vec![None; n];
    let mut outs: Vec<Option<T::State>> = vec![None; n];
    let mut join_count: Vec<u32> = vec![0; n];
    let mut evaluations: u64 = 0;
    let widen_at = widening_points(icfg);

    let mut work = RpoWorklist::new(icfg);
    let entry = icfg.entry();
    ins[entry.index()] = Some(transfer.boundary());
    work.insert(icfg.rpo_index(entry));

    let mut edge_fired = vec![false; icfg.edges().len()];
    let mut region_done = vec![false; plan.regions.len()];
    // Reachability of region nodes (whose `outs` stay `None`), needed to
    // report never-fired edges out of reached nodes as infeasible.
    let mut region_reached = vec![false; n];

    while let Some(node) = work.pop() {
        stamp_exec::cancel::checkpoint();
        let ni = node.index();
        if ins[ni].is_none() {
            join_count[ni] = 0;
            continue;
        }
        let r = plan.node_region[ni];
        if r != RegionPlan::INLINE {
            let spec = &plan.regions[r as usize];
            debug_assert_eq!(spec.entry, node, "region interior node scheduled");
            if spec.entry != node || region_done[r as usize] {
                return None;
            }
            region_done[r as usize] = true;
            let outcome = {
                let input = ins[ni].as_ref().expect("checked above");
                region_eval(r as usize, input)?
            };
            debug_assert_eq!(outcome.reached.len(), spec.nodes.len());
            debug_assert_eq!(outcome.exit_outs.len(), spec.exits.len());
            evaluations += outcome.evaluations;
            for (i, &reach) in outcome.reached.iter().enumerate() {
                if reach {
                    region_reached[spec.nodes[i].index()] = true;
                }
            }
            // A feasible internal edge fires exactly when its source is
            // locally reachable.
            for &(lf, _, eid) in &spec.edges {
                if outcome.reached[lf as usize] {
                    edge_fired[eid.index()] = true;
                }
            }
            for (&(_, eid), out) in spec.exits.iter().zip(&outcome.exit_outs) {
                let Some(out) = out else { continue };
                let e = icfg.edge(eid);
                let propagated = match transfer.edge(icfg, &e, out) {
                    Some(s) => s,
                    None => continue,
                };
                edge_fired[eid.index()] = true;
                let ti = e.to.index();
                let changed = match &mut ins[ti] {
                    Some(prev) => {
                        join_count[ti] += 1;
                        if widen_at[ti] && join_count[ti] > widen_delay {
                            prev.widen_from(&propagated)
                        } else {
                            prev.join_from(&propagated)
                        }
                    }
                    slot @ None => {
                        *slot = Some(propagated.into_owned());
                        true
                    }
                };
                if changed {
                    work.insert(icfg.rpo_index(e.to));
                }
            }
            continue;
        }
        evaluations += 1;
        let out = {
            let input = ins[ni].as_ref().expect("checked above");
            transfer.transfer(icfg, node, input)
        };
        let out_changed = match &mut outs[ni] {
            Some(prev) => prev.join_from(&out),
            slot @ None => {
                *slot = Some(out);
                true
            }
        };
        if !out_changed && evaluations > 1 {
            continue;
        }
        let out_state = outs[ni].as_ref().expect("just set");
        for e in icfg.succs(node) {
            let propagated = match transfer.edge(icfg, &e, out_state) {
                Some(s) => s,
                None => continue,
            };
            edge_fired[e.id.index()] = true;
            let ti = e.to.index();
            let changed = match &mut ins[ti] {
                Some(prev) => {
                    join_count[ti] += 1;
                    if widen_at[ti] && join_count[ti] > widen_delay {
                        prev.widen_from(&propagated)
                    } else {
                        prev.join_from(&propagated)
                    }
                }
                slot @ None => {
                    *slot = Some(propagated.into_owned());
                    true
                }
            };
            if changed {
                let tr = plan.node_region[ti];
                if tr != RegionPlan::INLINE {
                    let tspec = &plan.regions[tr as usize];
                    // The carver only admits edges into a region through
                    // its entry; a grown entry state after the region
                    // ran means a second episode — abort to monolithic.
                    if tspec.entry != e.to || region_done[tr as usize] {
                        return None;
                    }
                }
                work.insert(icfg.rpo_index(e.to));
            }
        }
    }

    // Region entries held their joined in-state for the callback; clear
    // them so downstream per-node passes (classification replay) treat
    // all region nodes uniformly as summary-covered.
    for spec in &plan.regions {
        ins[spec.entry.index()] = None;
    }

    let infeasible_edges = icfg
        .edges()
        .iter()
        .filter(|e| {
            !edge_fired[e.id.index()]
                && (outs[e.from.index()].is_some() || region_reached[e.from.index()])
        })
        .map(|e| e.id)
        .collect();

    Some(Fixpoint::from_parts(ins, outs, infeasible_edges, evaluations))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::VivuConfig;
    use crate::domain::tests::Bits;
    use crate::icfg::Icfg;
    use crate::solver::solve;
    use stamp_cfg::CfgBuilder;
    use stamp_isa::asm::assemble;
    use std::borrow::Cow;

    struct Reach;

    impl Transfer for Reach {
        type State = Bits;

        fn boundary(&self) -> Bits {
            Bits(1)
        }

        fn transfer(&mut self, icfg: &Icfg, node: NodeId, input: &Bits) -> Bits {
            let _ = icfg;
            Bits(input.0 | (1 << (node.index() + 1).min(63)))
        }
    }

    fn build(src: &str) -> (stamp_cfg::Cfg, Icfg) {
        let p = assemble(src).unwrap();
        let cfg = CfgBuilder::new(&p).build().unwrap();
        let icfg = Icfg::build(&cfg, &VivuConfig::default()).unwrap();
        (cfg, icfg)
    }

    /// Evaluates one region by locally re-running the transfer — the
    /// "trivial summary" that must make the composed driver agree with
    /// the monolithic solver exactly.
    fn eval_locally<T: Transfer>(
        icfg: &Icfg,
        transfer: &mut T,
        spec: &RegionSpec,
        entry: &T::State,
    ) -> RegionOutcome<T::State> {
        let k = spec.nodes.len();
        let mut ins: Vec<Option<T::State>> = vec![None; k];
        let mut outs: Vec<Option<T::State>> = vec![None; k];
        ins[0] = Some(entry.clone());
        let mut evaluations = 0;
        for i in 0..k {
            let Some(input) = ins[i].as_ref() else { continue };
            evaluations += 1;
            let out = transfer.transfer(icfg, spec.nodes[i], input);
            for &(lf, lt, eid) in &spec.edges {
                if lf as usize != i {
                    continue;
                }
                let e = icfg.edge(eid);
                if let Some(p) = transfer.edge(icfg, &e, &out) {
                    match &mut ins[lt as usize] {
                        Some(prev) => {
                            prev.join_from(&p);
                        }
                        slot @ None => *slot = Some(p.into_owned()),
                    }
                }
            }
            outs[i] = Some(out);
        }
        let reached: Vec<bool> = outs.iter().map(Option::is_some).collect();
        let exit_outs = spec.exits.iter().map(|&(lf, _)| outs[lf as usize].clone()).collect();
        RegionOutcome { exit_outs, reached, evaluations }
    }

    const CALL_PAIR: &str = ".text
main: li r1, 1
      call f
      add r2, r1, r1
      call f
      halt
f:    addi r1, r1, 1
      beq r1, r0, g
      ret
g:    ret
";

    #[test]
    fn carves_one_region_per_call_instance() {
        let (_cfg, icfg) = build(CALL_PAIR);
        let plan = carve_regions(&icfg, &HashSet::new());
        assert_eq!(plan.regions.len(), 2, "two instances of f");
        for spec in &plan.regions {
            assert_eq!(spec.nodes.len(), 3, "f = three blocks");
            assert!(spec.cont.is_some());
            assert!(!spec.exits.is_empty());
            for w in spec.nodes.windows(2) {
                assert!(icfg.rpo_index(w[0]) < icfg.rpo_index(w[1]));
            }
        }
        // The two regions are disjoint.
        let mut seen = HashSet::new();
        for spec in &plan.regions {
            for n in &spec.nodes {
                assert!(seen.insert(*n));
            }
        }
    }

    #[test]
    fn call_under_loop_is_not_carved() {
        let src = ".text
main: li r1, 4
loop: call f
      addi r1, r1, -1
      bnez r1, loop
      halt
f:    ret
";
        let (_cfg, icfg) = build(src);
        let plan = carve_regions(&icfg, &HashSet::new());
        assert!(plan.is_empty(), "call sites under loops stay inline");
    }

    #[test]
    fn composed_driver_matches_monolithic_solver() {
        for src in [
            CALL_PAIR,
            // Call followed by a loop in the caller.
            ".text
main: call f
      li r1, 3
loop: addi r1, r1, -1
      bnez r1, loop
      halt
f:    li r2, 7
      ret
",
            // Nested call: g's body is interior to f's region.
            ".text
main: call f
      halt
f:    call g
      ret
g:    li r3, 9
      ret
",
        ] {
            let (_cfg, icfg) = build(src);
            let plan = carve_regions(&icfg, &HashSet::new());
            assert!(!plan.is_empty(), "no region carved for {src}");
            let mono = solve(&icfg, &mut Reach, u32::MAX);
            let fp = solve_with_regions(&icfg, &mut Reach, &plan, u32::MAX, |r, entry| {
                Some(eval_locally(&icfg, &mut Reach, &plan.regions[r], entry))
            })
            .expect("no abort on carved regions");
            assert_eq!(fp.evaluations, mono.evaluations);
            assert_eq!(fp.infeasible_edges, mono.infeasible_edges);
            for nd in icfg.nodes() {
                if plan.node_region[nd.id.index()] == RegionPlan::INLINE {
                    assert_eq!(fp.input(nd.id).is_some(), mono.input(nd.id).is_some());
                    if let (Some(a), Some(b)) = (fp.input(nd.id), mono.input(nd.id)) {
                        assert_eq!(a.0, b.0);
                    }
                    if let (Some(a), Some(b)) = (fp.output(nd.id), mono.output(nd.id)) {
                        assert_eq!(a.0, b.0);
                    }
                } else {
                    assert!(fp.input(nd.id).is_none(), "region nodes carry no states");
                }
            }
        }
    }

    #[test]
    fn declined_region_eval_aborts() {
        let (_cfg, icfg) = build(CALL_PAIR);
        let plan = carve_regions(&icfg, &HashSet::new());
        let fp = solve_with_regions(&icfg, &mut Reach, &plan, u32::MAX, |_, _| {
            None::<RegionOutcome<Bits>>
        });
        assert!(fp.is_none());
    }

    #[test]
    fn infeasible_call_edge_rejects_region() {
        // If the only way into a region is infeasible, there is no call
        // edge left and the group stays inline.
        let (_cfg, icfg) = build(CALL_PAIR);
        let call_edges: HashSet<IEdgeId> = icfg
            .edges()
            .iter()
            .filter(|e| matches!(e.kind, IEdgeKind::Call { .. }))
            .map(|e| e.id)
            .collect();
        let plan = carve_regions(&icfg, &call_edges);
        assert!(plan.is_empty());

        // And the composed solver with an empty plan degenerates to the
        // monolithic result (edge feasibility handled by the transfer).
        struct KillCalls;
        impl Transfer for KillCalls {
            type State = Bits;
            fn boundary(&self) -> Bits {
                Bits(1)
            }
            fn transfer(&mut self, _i: &Icfg, _n: NodeId, s: &Bits) -> Bits {
                s.clone()
            }
            fn edge<'s>(
                &mut self,
                _i: &Icfg,
                e: &crate::icfg::IEdge,
                s: &'s Bits,
            ) -> Option<Cow<'s, Bits>> {
                match e.kind {
                    IEdgeKind::Call { .. } => None,
                    _ => Some(Cow::Borrowed(s)),
                }
            }
        }
        let mono = solve(&icfg, &mut KillCalls, u32::MAX);
        let fp = solve_with_regions(&icfg, &mut KillCalls, &plan, u32::MAX, |_, _| {
            unreachable!("empty plan never evaluates a region")
        })
        .expect("empty plan cannot abort");
        assert!(fp.equivalent(&mono));
    }
}
