//! VIVU execution contexts: virtual inlining × virtual unrolling.
//!
//! A context is a stack of [`Frame`]s describing *how* control reached a
//! block: which call sites are active (virtual inlining) and, for each
//! enclosing loop, whether we are in one of the first `peel` iterations
//! or in the steady state (virtual unrolling). Distinguishing the first
//! iteration is what lets the cache analysis prove "miss once, then
//! always hit" — the persistence effect the paper relies on for tight
//! bounds.

use std::collections::HashMap;
use std::fmt;

use stamp_cfg::BlockId;

/// One frame of a context stack.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Frame {
    /// A call through the call instruction at `site` is active.
    Call { site: u32 },
    /// Inside the loop headed at `header`; `iter` is the iteration class:
    /// `0..peel` are the peeled first iterations, `peel` is "any later
    /// iteration".
    Loop { header: BlockId, iter: u8 },
}

/// An interned context: a stack of frames, outermost first.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Ctx(pub Vec<Frame>);

impl Ctx {
    /// The empty (task-entry) context.
    pub fn root() -> Ctx {
        Ctx(Vec::new())
    }

    /// Number of active calls (virtual-inlining depth).
    pub fn call_depth(&self) -> usize {
        self.0.iter().filter(|f| matches!(f, Frame::Call { .. })).count()
    }

    /// The frames of this context.
    pub fn frames(&self) -> &[Frame] {
        &self.0
    }

    /// The context with all trailing loop frames removed — the pure
    /// call-site part, used to group loop instances and match returns.
    pub fn call_part(&self) -> &[Frame] {
        let mut end = self.0.len();
        while end > 0 && matches!(self.0[end - 1], Frame::Loop { .. }) {
            end -= 1;
        }
        &self.0[..end]
    }

    /// Returns `true` if `self` equals `prefix` followed only by loop
    /// frames (i.e. `self` is somewhere inside the body of the call
    /// context `prefix`). Used to connect return edges.
    pub fn extends_with_loops(&self, prefix: &Ctx) -> bool {
        self.0.len() >= prefix.0.len()
            && self.0[..prefix.0.len()] == prefix.0[..]
            && self.0[prefix.0.len()..].iter().all(|f| matches!(f, Frame::Loop { .. }))
    }
}

impl fmt::Display for Ctx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return f.write_str("⟨⟩");
        }
        f.write_str("⟨")?;
        for (i, frame) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            match frame {
                Frame::Call { site } => write!(f, "call@{site:#x}")?,
                Frame::Loop { header, iter } => write!(f, "{header}#{iter}")?,
            }
        }
        f.write_str("⟩")
    }
}

/// Index of an interned context in a [`CtxTable`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CtxId(pub u32);

impl CtxId {
    /// The context index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for CtxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Interner for contexts.
#[derive(Clone, Debug, Default)]
pub struct CtxTable {
    ctxs: Vec<Ctx>,
    ids: HashMap<Ctx, CtxId>,
}

impl CtxTable {
    /// Creates a table containing only the root context (id 0).
    pub fn new() -> CtxTable {
        let mut t = CtxTable::default();
        t.intern(Ctx::root());
        t
    }

    /// Interns a context.
    pub fn intern(&mut self, c: Ctx) -> CtxId {
        if let Some(&id) = self.ids.get(&c) {
            return id;
        }
        let id = CtxId(self.ctxs.len() as u32);
        self.ctxs.push(c.clone());
        self.ids.insert(c, id);
        id
    }

    /// The root (task-entry) context id.
    pub fn root(&self) -> CtxId {
        CtxId(0)
    }

    /// Looks up an interned context.
    pub fn get(&self, id: CtxId) -> &Ctx {
        &self.ctxs[id.index()]
    }

    /// Number of interned contexts.
    pub fn len(&self) -> usize {
        self.ctxs.len()
    }

    /// Returns `true` if no contexts are interned.
    pub fn is_empty(&self) -> bool {
        self.ctxs.is_empty()
    }
}

/// Configuration of the VIVU context mapping.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VivuConfig {
    /// Maximum virtual-inlining depth. Exceeding it (recursion) is an
    /// error — recursive programs need annotations and are handled by the
    /// stack analysis, not by ICFG expansion.
    pub max_call_depth: usize,
    /// Number of peeled loop iterations distinguished per loop (`0`
    /// disables virtual unrolling; `1` distinguishes "first" from
    /// "rest", which is what makes persistence-style cache effects
    /// visible).
    pub peel: u8,
    /// Hard cap on the number of distinct contexts, as a safety net.
    pub max_contexts: usize,
}

impl Default for VivuConfig {
    fn default() -> VivuConfig {
        VivuConfig { max_call_depth: 16, peel: 1, max_contexts: 65_536 }
    }
}

impl VivuConfig {
    /// A configuration with contexts disabled entirely: one context per
    /// block (still inlining calls — depth 1 call strings are required
    /// for interprocedural analysis — but no loop unrolling).
    pub fn no_unrolling() -> VivuConfig {
        VivuConfig { peel: 0, ..VivuConfig::default() }
    }
}

impl stamp_codec::Codec for Frame {
    fn enc(&self, e: &mut stamp_codec::Enc) {
        match self {
            Frame::Call { site } => {
                e.u8(0);
                e.u32(*site);
            }
            Frame::Loop { header, iter } => {
                e.u8(1);
                header.enc(e);
                e.u8(*iter);
            }
        }
    }
    fn dec(d: &mut stamp_codec::Dec) -> Result<Frame, stamp_codec::CodecError> {
        match d.u8()? {
            0 => Ok(Frame::Call { site: d.u32()? }),
            1 => Ok(Frame::Loop { header: stamp_codec::Codec::dec(d)?, iter: d.u8()? }),
            _ => Err(stamp_codec::CodecError::Invalid("frame tag")),
        }
    }
}

impl stamp_codec::Codec for Ctx {
    fn enc(&self, e: &mut stamp_codec::Enc) {
        self.0.enc(e);
    }
    fn dec(d: &mut stamp_codec::Dec) -> Result<Ctx, stamp_codec::CodecError> {
        Ok(Ctx(Vec::dec(d)?))
    }
}

impl stamp_codec::Codec for CtxId {
    fn enc(&self, e: &mut stamp_codec::Enc) {
        e.u32(self.0);
    }
    fn dec(d: &mut stamp_codec::Dec) -> Result<CtxId, stamp_codec::CodecError> {
        Ok(CtxId(d.u32()?))
    }
}

impl stamp_codec::Codec for CtxTable {
    /// Only the context vector is persisted; the interning map is
    /// rebuilt by re-interning each context, which reassigns the same
    /// sequential ids.
    fn enc(&self, e: &mut stamp_codec::Enc) {
        self.ctxs.enc(e);
    }
    fn dec(d: &mut stamp_codec::Dec) -> Result<CtxTable, stamp_codec::CodecError> {
        let ctxs: Vec<Ctx> = Vec::dec(d)?;
        let mut t = CtxTable::default();
        for (i, c) in ctxs.into_iter().enumerate() {
            if t.intern(c).index() != i {
                return Err(stamp_codec::CodecError::Invalid("duplicate context"));
            }
        }
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(n: u32) -> BlockId {
        BlockId(n)
    }

    #[test]
    fn call_part_strips_trailing_loops() {
        let c = Ctx(vec![
            Frame::Call { site: 8 },
            Frame::Loop { header: b(3), iter: 0 },
            Frame::Loop { header: b(5), iter: 1 },
        ]);
        assert_eq!(c.call_part(), &[Frame::Call { site: 8 }]);
        assert_eq!(c.call_depth(), 1);
        // Loop frames between calls are kept by call_part.
        let c2 = Ctx(vec![Frame::Loop { header: b(1), iter: 1 }, Frame::Call { site: 8 }]);
        assert_eq!(c2.call_part().len(), 2);
    }

    #[test]
    fn extends_with_loops_matches_returns() {
        let callctx = Ctx(vec![Frame::Call { site: 8 }]);
        let inner = Ctx(vec![Frame::Call { site: 8 }, Frame::Loop { header: b(3), iter: 1 }]);
        let other = Ctx(vec![Frame::Call { site: 12 }]);
        let deeper = Ctx(vec![Frame::Call { site: 8 }, Frame::Call { site: 20 }]);
        assert!(callctx.extends_with_loops(&callctx));
        assert!(inner.extends_with_loops(&callctx));
        assert!(!other.extends_with_loops(&callctx));
        assert!(!deeper.extends_with_loops(&callctx));
    }

    #[test]
    fn interning_is_stable() {
        let mut t = CtxTable::new();
        let a = t.intern(Ctx(vec![Frame::Call { site: 4 }]));
        let b_ = t.intern(Ctx(vec![Frame::Call { site: 8 }]));
        let a2 = t.intern(Ctx(vec![Frame::Call { site: 4 }]));
        assert_eq!(a, a2);
        assert_ne!(a, b_);
        assert_eq!(t.root(), CtxId(0));
        assert_eq!(t.get(t.root()), &Ctx::root());
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn display_formats() {
        let c = Ctx(vec![Frame::Call { site: 16 }, Frame::Loop { header: b(2), iter: 0 }]);
        assert_eq!(c.to_string(), "⟨call@0x10, b2#0⟩");
        assert_eq!(Ctx::root().to_string(), "⟨⟩");
    }
}
