//! The context-expanded interprocedural CFG (supergraph).
//!
//! Every micro-architectural analysis and the path analysis run on this
//! graph: nodes are `(basic block, context)` pairs, edges carry their
//! originating CFG edge (for loop-bound constraints) or call/return
//! information. Virtual inlining replaces call/return by explicit edges
//! into per-context copies of the callee; virtual unrolling gives the
//! first `peel` iterations of every loop their own copies.

use std::collections::{HashMap, VecDeque};
use std::error::Error;
use std::fmt;

use stamp_cfg::{BlockId, Cfg, CfgError, EdgeId, EdgeKind, FuncId};

use crate::context::{Ctx, CtxId, CtxTable, Frame, VivuConfig};

/// Index of a node in an [`Icfg`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Index of an edge in an [`Icfg`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IEdgeId(pub u32);

impl IEdgeId {
    /// The edge index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for IEdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ie{}", self.0)
    }
}

/// A supergraph node: one basic block in one context.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Node {
    /// This node's id.
    pub id: NodeId,
    /// The underlying basic block.
    pub block: BlockId,
    /// The execution context.
    pub ctx: CtxId,
}

/// Kind of a supergraph edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IEdgeKind {
    /// An intra-procedural edge; `cfg_edge` is the underlying CFG edge and
    /// `back_edge_of` names the loop header when it is a back edge.
    Intra { cfg_edge: EdgeId, back_edge_of: Option<BlockId> },
    /// A call edge from the call block into a callee entry.
    Call { site: u32 },
    /// A return edge from a callee return block to the caller's
    /// continuation.
    Return { site: u32 },
}

/// A supergraph edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IEdge {
    /// This edge's id.
    pub id: IEdgeId,
    /// Source node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Kind and provenance.
    pub kind: IEdgeKind,
}

/// Errors raised while expanding the supergraph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IcfgError {
    /// Virtual inlining exceeded the configured depth — almost always
    /// recursion, which requires annotations and is not supported by the
    /// ICFG-based WCET analyses.
    CallDepthExceeded { site: u32, depth: usize },
    /// More contexts than [`VivuConfig::max_contexts`] were created.
    ContextExplosion { limit: usize },
    /// An error from loop detection (e.g. irreducible control flow).
    Cfg(CfgError),
}

impl fmt::Display for IcfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IcfgError::CallDepthExceeded { site, depth } => {
                write!(f, "call depth {depth} exceeded at call site {site:#x} (recursive program?)")
            }
            IcfgError::ContextExplosion { limit } => {
                write!(f, "context limit of {limit} exceeded")
            }
            IcfgError::Cfg(e) => write!(f, "{e}"),
        }
    }
}

impl Error for IcfgError {}

impl From<CfgError> for IcfgError {
    fn from(e: CfgError) -> IcfgError {
        IcfgError::Cfg(e)
    }
}

/// One virtual-inlining instance of a call site.
#[derive(Clone, Debug)]
pub struct CallInstance {
    /// Address of the call instruction.
    pub site: u32,
    /// The callee.
    pub callee: FuncId,
    /// Context inside the callee (caller context + call frame).
    pub inner: CtxId,
    /// The caller-side continuation node, if the call has a local
    /// successor.
    pub return_node: Option<NodeId>,
}

/// The context-expanded supergraph. Build with [`Icfg::build`].
#[derive(Clone, Debug)]
pub struct Icfg {
    nodes: Vec<Node>,
    edges: Vec<IEdge>,
    succs: Vec<Vec<IEdgeId>>,
    preds: Vec<Vec<IEdgeId>>,
    node_ids: HashMap<(BlockId, CtxId), NodeId>,
    nodes_by_block: HashMap<BlockId, Vec<NodeId>>,
    ctxs: CtxTable,
    entry: NodeId,
    exits: Vec<NodeId>,
    call_instances: Vec<CallInstance>,
    rpo_index: Vec<u32>,
}

impl Icfg {
    /// Expands `cfg` into a supergraph under the given VIVU configuration.
    ///
    /// # Errors
    ///
    /// See [`IcfgError`]. Unresolved indirect jumps are tolerated (their
    /// blocks become dead ends) so that the value analysis can run and
    /// resolve them; the path analysis refuses incomplete graphs.
    pub fn build(cfg: &Cfg, vivu: &VivuConfig) -> Result<Icfg, IcfgError> {
        Builder::new(cfg, vivu)?.run()
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// One node.
    pub fn node(&self, id: NodeId) -> Node {
        self.nodes[id.index()]
    }

    /// All edges.
    pub fn edges(&self) -> &[IEdge] {
        &self.edges
    }

    /// One edge.
    pub fn edge(&self, id: IEdgeId) -> IEdge {
        self.edges[id.index()]
    }

    /// Outgoing edges of a node.
    pub fn succs(&self, n: NodeId) -> impl Iterator<Item = IEdge> + '_ {
        self.succs[n.index()].iter().map(|&e| self.edges[e.index()])
    }

    /// Incoming edges of a node.
    pub fn preds(&self, n: NodeId) -> impl Iterator<Item = IEdge> + '_ {
        self.preds[n.index()].iter().map(|&e| self.edges[e.index()])
    }

    /// The task-entry node.
    pub fn entry(&self) -> NodeId {
        self.entry
    }

    /// Task-exit nodes: `halt` blocks in any context plus `return` blocks
    /// of the entry function in the root call context.
    pub fn exits(&self) -> &[NodeId] {
        &self.exits
    }

    /// The context table.
    pub fn ctxs(&self) -> &CtxTable {
        &self.ctxs
    }

    /// The node for `(block, ctx)` if it exists.
    pub fn node_of(&self, block: BlockId, ctx: CtxId) -> Option<NodeId> {
        self.node_ids.get(&(block, ctx)).copied()
    }

    /// All context instances of one basic block.
    pub fn nodes_of_block(&self, block: BlockId) -> &[NodeId] {
        self.nodes_by_block.get(&block).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All virtual-inlining call instances.
    pub fn call_instances(&self) -> &[CallInstance] {
        &self.call_instances
    }

    /// Reverse-post-order index of a node (entry = 0); unreached nodes
    /// sort last.
    pub fn rpo_index(&self, n: NodeId) -> u32 {
        self.rpo_index[n.index()]
    }
}

struct Builder<'c> {
    cfg: &'c Cfg,
    vivu: &'c VivuConfig,
    ctxs: CtxTable,
    nodes: Vec<Node>,
    node_ids: HashMap<(BlockId, CtxId), NodeId>,
    edges: Vec<IEdge>,
    succs: Vec<Vec<IEdgeId>>,
    preds: Vec<Vec<IEdgeId>>,
    queue: VecDeque<NodeId>,
    /// Per block: enclosing loop headers, outermost first.
    chains: HashMap<BlockId, Vec<BlockId>>,
    /// Per CFG edge: header of the loop it is a back edge of.
    back_of: HashMap<EdgeId, BlockId>,
    call_instances: Vec<CallInstance>,
}

impl<'c> Builder<'c> {
    fn new(cfg: &'c Cfg, vivu: &'c VivuConfig) -> Result<Builder<'c>, IcfgError> {
        let mut chains: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
        let mut back_of = HashMap::new();
        for f in cfg.functions() {
            let forest = cfg.loop_forest(f.id)?;
            for &b in &f.blocks {
                // Build the chain by walking innermost → outermost.
                let mut chain = Vec::new();
                let mut cur = forest.innermost(b);
                while let Some(lid) = cur {
                    let l = forest.get(lid);
                    chain.push(l.header);
                    cur = l.parent;
                }
                chain.reverse();
                chains.insert(b, chain);
            }
            for l in forest.loops() {
                for &e in &l.back_edges {
                    back_of.insert(e, l.header);
                }
            }
        }
        Ok(Builder {
            cfg,
            vivu,
            ctxs: CtxTable::new(),
            nodes: Vec::new(),
            node_ids: HashMap::new(),
            edges: Vec::new(),
            succs: Vec::new(),
            preds: Vec::new(),
            queue: VecDeque::new(),
            chains,
            back_of,
            call_instances: Vec::new(),
        })
    }

    fn node(&mut self, block: BlockId, ctx: CtxId) -> Result<NodeId, IcfgError> {
        if let Some(&id) = self.node_ids.get(&(block, ctx)) {
            return Ok(id);
        }
        if self.ctxs.len() > self.vivu.max_contexts || self.nodes.len() > 4 * self.vivu.max_contexts
        {
            return Err(IcfgError::ContextExplosion { limit: self.vivu.max_contexts });
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node { id, block, ctx });
        self.node_ids.insert((block, ctx), id);
        self.succs.push(Vec::new());
        self.preds.push(Vec::new());
        self.queue.push_back(id);
        Ok(id)
    }

    fn add_edge(&mut self, from: NodeId, to: NodeId, kind: IEdgeKind) {
        // Deduplicate (possible when several CFG paths yield the same
        // context transition).
        if self.succs[from.index()]
            .iter()
            .any(|&e| self.edges[e.index()].to == to && self.edges[e.index()].kind == kind)
        {
            return;
        }
        let id = IEdgeId(self.edges.len() as u32);
        self.edges.push(IEdge { id, from, to, kind });
        self.succs[from.index()].push(id);
        self.preds[to.index()].push(id);
    }

    /// Applies the VIVU context transformation of an intra-procedural
    /// edge: pop exited loops, bump the iteration class on back edges,
    /// push entered loops at iteration 0.
    fn transform(&mut self, ctx: CtxId, from: BlockId, to: BlockId, eid: EdgeId) -> CtxId {
        if self.vivu.peel == 0 {
            return ctx;
        }
        let mut frames = self.ctxs.get(ctx).0.clone();
        let peel = self.vivu.peel;
        if let Some(&h) = self.back_of.get(&eid) {
            // Pop loop frames of loops strictly inside h.
            while let Some(Frame::Loop { header, .. }) = frames.last() {
                if *header == h {
                    break;
                }
                frames.pop();
            }
            if let Some(Frame::Loop { header, iter }) = frames.last().copied() {
                if header == h {
                    frames.pop();
                    frames.push(Frame::Loop { header: h, iter: iter.saturating_add(1).min(peel) });
                }
            }
        } else {
            let from_chain = &self.chains[&from];
            let to_chain = &self.chains[&to];
            let common = from_chain.iter().zip(to_chain.iter()).take_while(|(a, b)| a == b).count();
            // Pop frames of exited loops (innermost first).
            for &h in from_chain[common..].iter().rev() {
                while let Some(f) = frames.pop() {
                    if matches!(f, Frame::Loop { header, .. } if header == h) {
                        break;
                    }
                }
            }
            // Push entered loops at iteration 0.
            for &h in &to_chain[common..] {
                frames.push(Frame::Loop { header: h, iter: 0 });
            }
        }
        self.ctxs.intern(Ctx(frames))
    }

    fn run(mut self) -> Result<Icfg, IcfgError> {
        let entry_block = self.cfg.func(self.cfg.entry_func()).entry;
        let root = self.ctxs.root();
        let entry = self.node(entry_block, root)?;

        while let Some(n) = self.queue.pop_front() {
            let Node { block, ctx, .. } = self.nodes[n.index()];
            if let Some(cs) = self.cfg.call_site_of(block) {
                let site = cs.addr;
                let targets: Vec<FuncId> = cs.callee.targets().to_vec();
                let return_to = cs.return_to;
                // Caller-side continuation (context transformed along the
                // CallFall edge, which may exit or re-enter loops).
                let ret_node = match return_to {
                    Some(rt) => {
                        let eid = self
                            .cfg
                            .succs(block)
                            .find(|(_, e)| e.kind == EdgeKind::CallFall && e.to == rt)
                            .map(|(id, _)| id);
                        let rctx = match eid {
                            Some(eid) => self.transform(ctx, block, rt, eid),
                            None => ctx,
                        };
                        Some(self.node(rt, rctx)?)
                    }
                    None => None,
                };
                for callee in targets {
                    let mut frames = self.ctxs.get(ctx).0.clone();
                    frames.push(Frame::Call { site });
                    let inner_ctx = Ctx(frames);
                    if inner_ctx.call_depth() > self.vivu.max_call_depth {
                        return Err(IcfgError::CallDepthExceeded {
                            site,
                            depth: inner_ctx.call_depth(),
                        });
                    }
                    let inner = self.ctxs.intern(inner_ctx);
                    let callee_entry = self.cfg.func(callee).entry;
                    // If the callee's entry block heads a loop, entering
                    // the function also enters that loop: push its frame
                    // so virtual unrolling applies to entry-header loops.
                    // (`inner` itself stays the pure call context — return
                    // matching relies on it.)
                    let entry_ctx = if self.vivu.peel > 0 {
                        let chain = self.chains[&callee_entry].clone();
                        if chain.is_empty() {
                            inner
                        } else {
                            let mut frames = self.ctxs.get(inner).0.clone();
                            for h in chain {
                                frames.push(Frame::Loop { header: h, iter: 0 });
                            }
                            self.ctxs.intern(Ctx(frames))
                        }
                    } else {
                        inner
                    };
                    let to = self.node(callee_entry, entry_ctx)?;
                    self.add_edge(n, to, IEdgeKind::Call { site });
                    self.call_instances.push(CallInstance {
                        site,
                        callee,
                        inner,
                        return_node: ret_node,
                    });
                }
            } else {
                let succ_list: Vec<(EdgeId, BlockId)> =
                    self.cfg.succs(block).map(|(eid, e)| (eid, e.to)).collect();
                for (eid, to_block) in succ_list {
                    let to_ctx = self.transform(ctx, block, to_block, eid);
                    let to = self.node(to_block, to_ctx)?;
                    let back = self.back_of.get(&eid).copied();
                    self.add_edge(n, to, IEdgeKind::Intra { cfg_edge: eid, back_edge_of: back });
                }
            }
        }

        // Return edges: connect every return-block instance of a callee
        // whose context sits inside the inlined call to the caller's
        // continuation.
        let instances = self.call_instances.clone();
        for inst in &instances {
            let ret_node = match inst.return_node {
                Some(r) => r,
                None => continue,
            };
            let inner_ctx = self.ctxs.get(inst.inner).clone();
            for &rb in &self.cfg.func(inst.callee).returns.clone() {
                let candidates: Vec<NodeId> = self
                    .nodes
                    .iter()
                    .filter(|nd| {
                        nd.block == rb && self.ctxs.get(nd.ctx).extends_with_loops(&inner_ctx)
                    })
                    .map(|nd| nd.id)
                    .collect();
                for c in candidates {
                    self.add_edge(c, ret_node, IEdgeKind::Return { site: inst.site });
                }
            }
        }

        // Exits.
        let mut exits = Vec::new();
        for nd in &self.nodes {
            let b = self.cfg.block(nd.block);
            match b.exit_flow() {
                stamp_isa::Flow::Halt => exits.push(nd.id),
                stamp_isa::Flow::Return if self.ctxs.get(nd.ctx).call_depth() == 0 => {
                    exits.push(nd.id);
                }
                _ => {}
            }
        }

        // Reverse post-order from the entry.
        let n = self.nodes.len();
        let mut rpo_index = vec![u32::MAX; n];
        let mut visited = vec![false; n];
        let mut post: Vec<NodeId> = Vec::new();
        let mut stack: Vec<(NodeId, usize)> = vec![(entry, 0)];
        visited[entry.index()] = true;
        while let Some(&mut (nd, ref mut i)) = stack.last_mut() {
            let outs = &self.succs[nd.index()];
            if *i < outs.len() {
                let to = self.edges[outs[*i].index()].to;
                *i += 1;
                if !visited[to.index()] {
                    visited[to.index()] = true;
                    stack.push((to, 0));
                }
            } else {
                post.push(nd);
                stack.pop();
            }
        }
        for (i, nd) in post.iter().rev().enumerate() {
            rpo_index[nd.index()] = i as u32;
        }

        let mut nodes_by_block: HashMap<BlockId, Vec<NodeId>> = HashMap::new();
        for nd in &self.nodes {
            nodes_by_block.entry(nd.block).or_default().push(nd.id);
        }

        Ok(Icfg {
            nodes: self.nodes,
            edges: self.edges,
            succs: self.succs,
            preds: self.preds,
            node_ids: self.node_ids,
            nodes_by_block,
            ctxs: self.ctxs,
            entry,
            exits,
            call_instances: self.call_instances,
            rpo_index,
        })
    }
}

impl stamp_codec::Codec for NodeId {
    fn enc(&self, e: &mut stamp_codec::Enc) {
        e.u32(self.0);
    }
    fn dec(d: &mut stamp_codec::Dec) -> Result<NodeId, stamp_codec::CodecError> {
        Ok(NodeId(d.u32()?))
    }
}

impl stamp_codec::Codec for IEdgeId {
    fn enc(&self, e: &mut stamp_codec::Enc) {
        e.u32(self.0);
    }
    fn dec(d: &mut stamp_codec::Dec) -> Result<IEdgeId, stamp_codec::CodecError> {
        Ok(IEdgeId(d.u32()?))
    }
}

impl stamp_codec::Codec for Node {
    fn enc(&self, e: &mut stamp_codec::Enc) {
        self.id.enc(e);
        self.block.enc(e);
        self.ctx.enc(e);
    }
    fn dec(d: &mut stamp_codec::Dec) -> Result<Node, stamp_codec::CodecError> {
        Ok(Node { id: NodeId::dec(d)?, block: stamp_codec::Codec::dec(d)?, ctx: CtxId::dec(d)? })
    }
}

impl stamp_codec::Codec for IEdgeKind {
    fn enc(&self, e: &mut stamp_codec::Enc) {
        match self {
            IEdgeKind::Intra { cfg_edge, back_edge_of } => {
                e.u8(0);
                cfg_edge.enc(e);
                back_edge_of.enc(e);
            }
            IEdgeKind::Call { site } => {
                e.u8(1);
                e.u32(*site);
            }
            IEdgeKind::Return { site } => {
                e.u8(2);
                e.u32(*site);
            }
        }
    }
    fn dec(d: &mut stamp_codec::Dec) -> Result<IEdgeKind, stamp_codec::CodecError> {
        match d.u8()? {
            0 => Ok(IEdgeKind::Intra {
                cfg_edge: stamp_codec::Codec::dec(d)?,
                back_edge_of: Option::dec(d)?,
            }),
            1 => Ok(IEdgeKind::Call { site: d.u32()? }),
            2 => Ok(IEdgeKind::Return { site: d.u32()? }),
            _ => Err(stamp_codec::CodecError::Invalid("iedge kind")),
        }
    }
}

impl stamp_codec::Codec for IEdge {
    fn enc(&self, e: &mut stamp_codec::Enc) {
        self.id.enc(e);
        self.from.enc(e);
        self.to.enc(e);
        self.kind.enc(e);
    }
    fn dec(d: &mut stamp_codec::Dec) -> Result<IEdge, stamp_codec::CodecError> {
        Ok(IEdge {
            id: IEdgeId::dec(d)?,
            from: NodeId::dec(d)?,
            to: NodeId::dec(d)?,
            kind: IEdgeKind::dec(d)?,
        })
    }
}

impl stamp_codec::Codec for CallInstance {
    fn enc(&self, e: &mut stamp_codec::Enc) {
        e.u32(self.site);
        self.callee.enc(e);
        self.inner.enc(e);
        self.return_node.enc(e);
    }
    fn dec(d: &mut stamp_codec::Dec) -> Result<CallInstance, stamp_codec::CodecError> {
        Ok(CallInstance {
            site: d.u32()?,
            callee: stamp_codec::Codec::dec(d)?,
            inner: CtxId::dec(d)?,
            return_node: Option::dec(d)?,
        })
    }
}

impl stamp_codec::Codec for Icfg {
    /// The two lookup maps (`node_ids`, `nodes_by_block`) are derived
    /// from `nodes` and rebuilt on decode; everything else is persisted
    /// positionally for an exact round-trip.
    fn enc(&self, e: &mut stamp_codec::Enc) {
        self.nodes.enc(e);
        self.edges.enc(e);
        self.succs.enc(e);
        self.preds.enc(e);
        self.ctxs.enc(e);
        self.entry.enc(e);
        self.exits.enc(e);
        self.call_instances.enc(e);
        self.rpo_index.enc(e);
    }
    fn dec(d: &mut stamp_codec::Dec) -> Result<Icfg, stamp_codec::CodecError> {
        let nodes: Vec<Node> = Vec::dec(d)?;
        let edges: Vec<IEdge> = Vec::dec(d)?;
        let succs: Vec<Vec<IEdgeId>> = Vec::dec(d)?;
        let preds: Vec<Vec<IEdgeId>> = Vec::dec(d)?;
        let ctxs = CtxTable::dec(d)?;
        let entry = NodeId::dec(d)?;
        let exits: Vec<NodeId> = Vec::dec(d)?;
        let call_instances: Vec<CallInstance> = Vec::dec(d)?;
        let rpo_index: Vec<u32> = Vec::dec(d)?;
        if succs.len() != nodes.len()
            || preds.len() != nodes.len()
            || rpo_index.len() != nodes.len()
        {
            return Err(stamp_codec::CodecError::Invalid("icfg table lengths"));
        }
        let mut node_ids = HashMap::new();
        let mut nodes_by_block: HashMap<BlockId, Vec<NodeId>> = HashMap::new();
        for (i, nd) in nodes.iter().enumerate() {
            if nd.id.index() != i {
                return Err(stamp_codec::CodecError::Invalid("icfg node ids"));
            }
            node_ids.insert((nd.block, nd.ctx), nd.id);
            nodes_by_block.entry(nd.block).or_default().push(nd.id);
        }
        Ok(Icfg {
            nodes,
            edges,
            succs,
            preds,
            node_ids,
            nodes_by_block,
            ctxs,
            entry,
            exits,
            call_instances,
            rpo_index,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stamp_cfg::CfgBuilder;
    use stamp_isa::asm::assemble;

    fn icfg_of(src: &str, vivu: &VivuConfig) -> Icfg {
        let p = assemble(src).expect("assembles");
        let cfg = CfgBuilder::new(&p).build().expect("builds");
        Icfg::build(&cfg, vivu).expect("expands")
    }

    #[test]
    fn loop_body_duplicated_by_unrolling() {
        let src = ".text\nmain: li r1, 4\nloop: addi r1, r1, -1\nbnez r1, loop\nhalt\n";
        let unrolled = icfg_of(src, &VivuConfig::default());
        let flat = icfg_of(src, &VivuConfig::no_unrolling());
        // peel=1: the loop block exists in iteration classes 0 and 1.
        assert_eq!(unrolled.nodes().len(), flat.nodes().len() + 1);
    }

    #[test]
    fn call_creates_inlined_copy_per_site() {
        let src = "\
            .text
            main: call f
                  call f
                  halt
            f:    ret
        ";
        let icfg = icfg_of(src, &VivuConfig::default());
        // f's body appears once per call site.
        let call_edges =
            icfg.edges().iter().filter(|e| matches!(e.kind, IEdgeKind::Call { .. })).count();
        let ret_edges =
            icfg.edges().iter().filter(|e| matches!(e.kind, IEdgeKind::Return { .. })).count();
        assert_eq!(call_edges, 2);
        assert_eq!(ret_edges, 2);
        assert_eq!(icfg.call_instances().len(), 2);
        assert_eq!(icfg.exits().len(), 1);
    }

    #[test]
    fn recursion_is_detected() {
        let src = ".text\nmain: call main\nhalt\n";
        let p = assemble(src).unwrap();
        let cfg = CfgBuilder::new(&p).build().unwrap();
        let err = Icfg::build(&cfg, &VivuConfig::default()).unwrap_err();
        assert!(matches!(err, IcfgError::CallDepthExceeded { .. }));
    }

    #[test]
    fn back_edge_context_transitions() {
        let src = ".text\nmain: li r1, 4\nloop: addi r1, r1, -1\nbnez r1, loop\nhalt\n";
        let icfg = icfg_of(src, &VivuConfig::default());
        // Find the back edges: one from iter-0 to iter-1, one iter-1 self loop.
        let backs: Vec<&IEdge> = icfg
            .edges()
            .iter()
            .filter(|e| matches!(e.kind, IEdgeKind::Intra { back_edge_of: Some(_), .. }))
            .collect();
        assert_eq!(backs.len(), 2);
        let self_loops = backs.iter().filter(|e| e.from == e.to).count();
        assert_eq!(self_loops, 1, "steady-state context loops on itself");
    }

    #[test]
    fn nested_loop_contexts() {
        let src = "\
            .text
            main:  li r1, 3
            outer: li r2, 4
            inner: addi r2, r2, -1
                   bnez r2, inner
                   addi r1, r1, -1
                   bnez r1, outer
                   halt
        ";
        let icfg = icfg_of(src, &VivuConfig::default());
        // Inner loop body: outer∈{0,1} × inner∈{0,1} = 4 instances.
        let p = assemble(src).unwrap();
        let cfg = CfgBuilder::new(&p).build().unwrap();
        let inner_block = cfg.block_at(p.symbols.addr_of("inner").unwrap()).unwrap();
        assert_eq!(icfg.nodes_of_block(inner_block).len(), 4);
    }

    #[test]
    fn rpo_starts_at_entry() {
        let src = ".text\nmain: call f\nhalt\nf: ret\n";
        let icfg = icfg_of(src, &VivuConfig::default());
        assert_eq!(icfg.rpo_index(icfg.entry()), 0);
        for e in icfg.edges() {
            // Except back/return-ish cycles, RPO should mostly ascend; at
            // minimum every reachable node has an index.
            assert_ne!(icfg.rpo_index(e.to), u32::MAX);
        }
    }

    #[test]
    fn exit_via_return_of_entry_function() {
        let src = ".text\nmain: nop\nret\n";
        let icfg = icfg_of(src, &VivuConfig::default());
        assert_eq!(icfg.exits().len(), 1);
    }

    #[test]
    fn icfg_round_trips_byte_exactly() {
        let src = "\
            .text
            main:  li r1, 3
            outer: li r2, 4
            inner: addi r2, r2, -1
                   bnez r2, inner
                   call f
                   addi r1, r1, -1
                   bnez r1, outer
                   halt
            f:     ret
        ";
        let icfg = icfg_of(src, &VivuConfig::default());
        let bytes = stamp_codec::encode_value(&icfg);
        let back: Icfg = stamp_codec::decode_value(&bytes).unwrap();
        assert_eq!(stamp_codec::encode_value(&back), bytes);
        assert_eq!(back.entry(), icfg.entry());
        assert_eq!(back.exits(), icfg.exits());
        assert_eq!(back.nodes(), icfg.nodes());
        assert_eq!(back.edges(), icfg.edges());
        assert_eq!(back.ctxs().len(), icfg.ctxs().len());
        // Rebuilt lookup maps answer identically.
        for nd in icfg.nodes() {
            assert_eq!(back.node_of(nd.block, nd.ctx), Some(nd.id));
            assert_eq!(back.rpo_index(nd.id), icfg.rpo_index(nd.id));
        }
        assert!(stamp_codec::decode_value::<Icfg>(&bytes[..bytes.len() - 2]).is_err());
    }
}
