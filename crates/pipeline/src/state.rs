//! Abstract pipeline states.

use std::collections::BTreeSet;

use stamp_ai::Domain;
use stamp_isa::Reg;

/// One concrete pipeline state at a block boundary: the load-use hazard
/// window (destination of an immediately preceding load, if any).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PipeState {
    /// Destination register of the load that retired last, if the last
    /// retired instruction was a load.
    pub pending_load: Option<Reg>,
}

impl PipeState {
    /// The reset state (no pending load).
    pub fn clean() -> PipeState {
        PipeState::default()
    }
}

/// A set of possible pipeline states — the abstract domain of the
/// pipeline analysis. Join is set union; the set is bounded by the
/// number of registers + 1, so chains are finite.
///
/// # Example
///
/// ```
/// use stamp_pipeline::{PipeSet, PipeState};
/// use stamp_ai::Domain;
///
/// let mut a = PipeSet::of(PipeState::clean());
/// let b = PipeSet::of(PipeState { pending_load: Some(stamp_isa::Reg::new(3)) });
/// assert!(a.join_from(&b));
/// assert_eq!(a.iter().count(), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct PipeSet(BTreeSet<PipeState>);

impl PipeSet {
    /// The empty set (unreachable).
    pub fn empty() -> PipeSet {
        PipeSet::default()
    }

    /// A singleton set.
    pub fn of(s: PipeState) -> PipeSet {
        let mut set = BTreeSet::new();
        set.insert(s);
        PipeSet(set)
    }

    /// The set of all pipeline states (used as a sound fallback for
    /// blocks the analyses could not reach).
    pub fn universe() -> PipeSet {
        let mut set = BTreeSet::new();
        set.insert(PipeState::clean());
        for r in Reg::all() {
            set.insert(PipeState { pending_load: Some(r) });
        }
        PipeSet(set)
    }

    /// Inserts a state.
    pub fn insert(&mut self, s: PipeState) {
        self.0.insert(s);
    }

    /// Iterates over the member states.
    pub fn iter(&self) -> impl Iterator<Item = &PipeState> {
        self.0.iter()
    }

    /// Returns `true` if no states are possible.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Domain for PipeSet {
    fn join_from(&mut self, other: &PipeSet) -> bool {
        let before = self.0.len();
        self.0.extend(other.0.iter().copied());
        self.0.len() != before
    }

    fn le(&self, other: &PipeSet) -> bool {
        self.0.is_subset(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_union() {
        let mut a = PipeSet::of(PipeState::clean());
        let b = PipeSet::of(PipeState { pending_load: Some(Reg::new(1)) });
        assert!(a.join_from(&b));
        assert!(!a.join_from(&b));
        assert!(b.le(&a));
        assert!(!a.le(&b));
        assert_eq!(a.iter().count(), 2);
    }
}
