//! Per-procedure pipeline summaries.
//!
//! The pipeline phase's analogue of the cache summaries
//! (`stamp_cache::summary`): each carved call-body region is walked
//! once per *entry class* and the result memoized. The key is what the
//! block walk actually consumes — the instruction stream, each
//! reference's cache classification, the walk-relevant timing
//! parameters, and the entry [`PipeSet`]. Unlike the cache domains the
//! pipeline state is absolute (a set of pending-load windows), so the
//! payload stores exit sets directly; no transformer tables are needed.
//!
//! The memoized payload also carries the per-node worst-case cycle
//! bounds, so the post-fixpoint timing pass reads reached region nodes
//! from the summary. Nodes of *unreached* regions are timed inline from
//! the universe set, exactly like monolithic dead code.

use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use stamp_ai::{
    carve_regions, solve_with_regions, Domain, Icfg, RegionOutcome, RegionPlan, RegionSpec,
};
use stamp_cache::{CacheAnalysis, UarchMemo, UarchSummaryStats};
use stamp_cfg::Cfg;
use stamp_codec::{Codec, CodecError, Dec, Enc};
use stamp_hw::{HwConfig, Timing};
use stamp_value::ValueAnalysis;

use crate::analysis::{PipeTransfer, PipelineAnalysis};
use crate::state::{PipeSet, PipeState};

/// Bumped whenever the summary key or payload layout changes.
const SUMMARY_VERSION: u8 = 1;

impl Codec for PipeState {
    fn enc(&self, e: &mut Enc) {
        self.pending_load.enc(e);
    }
    fn dec(d: &mut Dec) -> Result<PipeState, CodecError> {
        Ok(PipeState { pending_load: Codec::dec(d)? })
    }
}

/// A memoized region summary of the pipeline phase.
#[derive(Clone, Debug)]
struct PipeSummary {
    /// Node evaluations the monolithic solver would perform inside.
    evaluations: u64,
    /// Locally reachable nodes.
    reached: Vec<bool>,
    /// Worst-case cycle bound per node (meaningful when reached).
    times: Vec<u64>,
    /// Exit pipeline-state sets per exit edge (`None` = unreached).
    exits: Vec<Option<Vec<PipeState>>>,
}

impl Codec for PipeSummary {
    fn enc(&self, e: &mut Enc) {
        e.u64(self.evaluations);
        self.reached.enc(e);
        self.times.enc(e);
        self.exits.enc(e);
    }
    fn dec(d: &mut Dec) -> Result<PipeSummary, CodecError> {
        Ok(PipeSummary {
            evaluations: d.u64()?,
            reached: Codec::dec(d)?,
            times: Codec::dec(d)?,
            exits: Codec::dec(d)?,
        })
    }
}

/// The canonical key prefix of one region: everything the block walk
/// reads except the entry state. Two call instances whose bodies carry
/// the same classifications share the prefix.
fn region_bytes(
    spec: &RegionSpec,
    icfg: &Icfg,
    cfg: &Cfg,
    ca: &CacheAnalysis,
    t: Timing,
) -> Vec<u8> {
    let mut e = Enc::new();
    e.u8(SUMMARY_VERSION);
    e.u32(t.i_miss_penalty);
    e.u32(t.d_miss_penalty);
    e.u32(t.mul_latency);
    e.u32(t.div_latency);
    t.load_use_hazard.enc(&mut e);
    e.len_prefix(spec.nodes.len());
    for &n in &spec.nodes {
        let nd = icfg.node(n);
        let block = cfg.block(nd.block);
        e.len_prefix(block.insns.len());
        for &(addr, insn) in &block.insns {
            insn.enc(&mut e);
            ca.class(addr, nd.ctx).enc(&mut e);
        }
    }
    let edges: Vec<(u32, u32)> = spec.edges.iter().map(|&(f, to, _)| (f, to)).collect();
    edges.enc(&mut e);
    let exit_froms: Vec<u32> = spec.exits.iter().map(|&(f, _)| f).collect();
    exit_froms.enc(&mut e);
    e.into_bytes()
}

/// Runs the region's fixpoint locally: a single forward pass over the
/// acyclic, topologically ordered body, mirroring the monolithic
/// transfer (including the clean-state fallback for empty out-sets).
fn compute_summary(
    t: &PipeTransfer<'_>,
    icfg: &Icfg,
    spec: &RegionSpec,
    entry: &PipeSet,
) -> PipeSummary {
    let k = spec.nodes.len();
    let mut ins: Vec<Option<PipeSet>> = vec![None; k];
    ins[0] = Some(entry.clone());
    let mut reached = vec![false; k];
    let mut times = vec![0u64; k];
    let mut exit_outs: Vec<Option<PipeSet>> = vec![None; spec.exits.len()];
    let mut evaluations = 0u64;
    for i in 0..k {
        let Some(input) = ins[i].take() else { continue };
        reached[i] = true;
        evaluations += 1;
        let mut out = PipeSet::empty();
        let mut tmax = 0u64;
        for s in input.iter() {
            let (c, exit) = t.walk(icfg, spec.nodes[i], *s);
            tmax = tmax.max(c);
            out.insert(exit);
        }
        if out.is_empty() {
            out.insert(PipeState::clean());
        }
        times[i] = tmax;
        for (x, &(lf, _)) in spec.exits.iter().enumerate() {
            if lf as usize == i {
                exit_outs[x] = Some(out.clone());
            }
        }
        for &(lf, lt, _) in &spec.edges {
            if lf as usize != i {
                continue;
            }
            match &mut ins[lt as usize] {
                Some(prev) => {
                    prev.join_from(&out);
                }
                slot @ None => *slot = Some(out.clone()),
            }
        }
    }
    let exits = exit_outs.iter().map(|o| o.as_ref().map(|s| s.iter().copied().collect())).collect();
    PipeSummary { evaluations, reached, times, exits }
}

impl PipelineAnalysis {
    /// Runs the pipeline analysis with per-procedure summaries (see
    /// [`CacheAnalysis::run_summarized`] for the contract). Returns
    /// `None` when nothing is summarizable; the caller must then fall
    /// back to [`PipelineAnalysis::run`]. On success the result is
    /// bit-identical to the monolithic analysis.
    pub fn run_summarized(
        hw: &HwConfig,
        cfg: &Cfg,
        icfg: &Icfg,
        ca: &CacheAnalysis,
        va: &ValueAnalysis,
        memo: &mut dyn UarchMemo,
    ) -> Option<(PipelineAnalysis, UarchSummaryStats)> {
        let infeasible: HashSet<stamp_ai::IEdgeId> =
            va.infeasible_edges().iter().copied().collect();
        let plan = carve_regions(icfg, &infeasible);
        if plan.is_empty() {
            return None;
        }
        // A second transfer for the summary walks: `walk` never
        // consults the infeasible set, and the solver holds the
        // mutable borrow of the primary transfer.
        let local = PipeTransfer { cfg, hw, ca, infeasible: HashSet::new() };
        let mut transfer = PipeTransfer { cfg, hw, ca, infeasible };
        let struct_bytes: Vec<Vec<u8>> =
            plan.regions.iter().map(|s| region_bytes(s, icfg, cfg, ca, hw.timing)).collect();

        let mut applied: Vec<Option<Rc<PipeSummary>>> = vec![None; plan.regions.len()];
        let mut computed = 0usize;
        let mut reused = 0usize;
        let fixpoint = solve_with_regions(icfg, &mut transfer, &plan, u32::MAX, |r, entry| {
            let spec = &plan.regions[r];
            let mut key = struct_bytes[r].clone();
            let mut e = Enc::new();
            let states: Vec<PipeState> = entry.iter().copied().collect();
            states.enc(&mut e);
            key.extend_from_slice(&e.into_bytes());
            let mut fresh = false;
            let bytes = memo.recall(&key, &mut || {
                fresh = true;
                stamp_codec::encode_value(&compute_summary(&local, icfg, spec, entry))
            });
            if fresh {
                computed += 1;
            } else {
                reused += 1;
            }
            let summary: PipeSummary = stamp_codec::decode_value(&bytes).ok()?;
            if summary.reached.len() != spec.nodes.len()
                || summary.times.len() != spec.nodes.len()
                || summary.exits.len() != spec.exits.len()
            {
                return None; // foreign bytes under our key: fall back
            }
            let outcome = RegionOutcome {
                exit_outs: summary
                    .exits
                    .iter()
                    .map(|o| {
                        o.as_ref().map(|states| {
                            let mut set = PipeSet::empty();
                            for s in states {
                                set.insert(*s);
                            }
                            set
                        })
                    })
                    .collect(),
                reached: summary.reached.clone(),
                evaluations: summary.evaluations,
            };
            applied[r] = Some(Rc::new(summary));
            Some(outcome)
        })?;

        let mut times = HashMap::new();
        let universe = PipeSet::universe();
        for nd in icfg.nodes() {
            let r = plan.node_region[nd.id.index()];
            if r != RegionPlan::INLINE {
                let spec = &plan.regions[r as usize];
                let i = spec.nodes.iter().position(|&n| n == nd.id).expect("node in its region");
                if let Some(s) = &applied[r as usize] {
                    if s.reached[i] {
                        times.insert(nd.id, s.times[i]);
                        continue;
                    }
                }
                // Unreached region node: the same sound universe bound
                // the monolithic pass gives dead code.
                let t = universe.iter().map(|s| local.walk(icfg, nd.id, *s).0).max().unwrap_or(0);
                times.insert(nd.id, t);
            } else {
                let input = fixpoint.input(nd.id).unwrap_or(&universe);
                let t = input.iter().map(|s| local.walk(icfg, nd.id, *s).0).max().unwrap_or(0);
                times.insert(nd.id, t);
            }
        }
        let ps_extra = ca.ps_fetch_lines().len() as u64 * hw.timing.i_miss_penalty as u64
            + ca.ps_data_lines().len() as u64 * hw.timing.d_miss_penalty as u64;
        let stats = UarchSummaryStats { regions: plan.regions.len(), computed, reused };
        Some((
            PipelineAnalysis::from_parts(
                times,
                hw.timing.branch_penalty as u64,
                ps_extra,
                fixpoint.evaluations,
            ),
            stats,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stamp_ai::VivuConfig;
    use stamp_cache::LocalUarchMemo;
    use stamp_cfg::CfgBuilder;
    use stamp_isa::asm::assemble;
    use stamp_value::ValueOptions;

    /// Runs both modes and checks bit-identity of every observable.
    fn check(src: &str, hw: &HwConfig) -> Option<UarchSummaryStats> {
        let p = assemble(src).expect("assembles");
        let cfg = CfgBuilder::new(&p).build().expect("builds");
        let icfg = Icfg::build(&cfg, &VivuConfig::default()).expect("expands");
        let va = ValueAnalysis::run(&p, hw, &cfg, &icfg, &ValueOptions::default());
        let ca = CacheAnalysis::run(hw, &cfg, &icfg, &va);
        let mono = PipelineAnalysis::run(hw, &cfg, &icfg, &ca, &va);
        let mut memo = LocalUarchMemo::default();
        let (sum, stats) = PipelineAnalysis::run_summarized(hw, &cfg, &icfg, &ca, &va, &mut memo)?;
        assert_eq!(sum.times(), mono.times(), "node times differ for {src}");
        assert_eq!(sum.ps_extra_cycles(), mono.ps_extra_cycles());
        assert_eq!(sum.evaluations, mono.evaluations, "evaluations for {src}");
        Some(stats)
    }

    #[test]
    fn summarized_matches_monolithic() {
        let srcs = [
            // Loads, hazards, and multi-cycle EX inside the callee.
            ".text
main: la r1, v
      call f
      call f
      call f
      halt
f:    lw r2, 0(r1)
      add r3, r2, r2
      mul r4, r3, r3
      ret
.data
v:    .word 7
",
            // Branchy callee.
            ".text
main: li r1, 1
      call f
      add r2, r1, r1
      call f
      halt
f:    addi r1, r1, 1
      beq r1, r0, g
      ret
g:    ret
",
        ];
        for src in srcs {
            for hw in [HwConfig::ideal(), HwConfig::default(), HwConfig::no_cache()] {
                let stats = check(src, &hw).expect("regions carved");
                assert!(stats.computed + stats.reused > 0, "{stats:?}");
            }
        }
    }

    #[test]
    fn repeated_calls_reuse_the_summary() {
        // Once the callee's classifications stabilize (hot cache), later
        // instances share both the key prefix and the entry set.
        let src = ".text
main: call f
      call f
      call f
      halt
f:    li r1, 1
      ret
";
        let stats = check(src, &HwConfig::default()).expect("regions carved");
        assert_eq!(stats.regions, 3);
        assert!(stats.reused >= 1, "{stats:?}");
    }

    #[test]
    fn straight_line_code_has_no_regions() {
        assert!(check(".text\nmain: li r1, 2\nhalt\n", &HwConfig::default()).is_none());
    }
}
