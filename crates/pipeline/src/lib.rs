//! # stamp-pipeline — pipeline analysis
//!
//! Implements the paper's pipeline phase: "pipeline analysis predicts the
//! behavior of the program on the processor pipeline", consuming the
//! cache classifications ("the results of cache analysis are used within
//! pipeline analysis, allowing the prediction of pipeline stalls due to
//! cache misses").
//!
//! The EVA32 pipeline's only *cross-instruction* state is the load-use
//! hazard window: whether the previously retired instruction was a load,
//! and into which register. Because this crosses basic-block boundaries,
//! the analysis tracks — exactly as aiT does — **sets of abstract
//! pipeline states** at block boundaries ([`PipeSet`]) and computes, per
//! `(block, context)`, a cycle bound valid for *every* incoming pipeline
//! state ([`PipelineAnalysis::time`]).
//!
//! Taken-branch penalties are attributed to supergraph *edges*
//! ([`PipelineAnalysis::edge_penalty`]) so that the path analysis charges
//! them only on taken transitions, mirroring the hardware model in
//! `stamp-hw` cycle for cycle.

mod analysis;
mod state;
mod summary;

pub use analysis::PipelineAnalysis;
pub use state::{PipeSet, PipeState};
