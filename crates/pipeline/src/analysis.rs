//! Per-block cycle bounds from cache classifications and pipeline state.

use std::collections::HashMap;

use stamp_ai::{solve, IEdge, IEdgeKind, Icfg, NodeId, Transfer};
use stamp_cache::{CacheAnalysis, Classification};
use stamp_cfg::{Cfg, EdgeKind};
use stamp_hw::HwConfig;
use stamp_isa::Insn;

use crate::state::{PipeSet, PipeState};

/// Results of the pipeline analysis: a worst-case cycle bound per
/// supergraph node plus per-edge control-transfer penalties.
///
/// Persistent references are priced as hits in the per-node times; the
/// one-time miss each persistent line can still take is accounted for by
/// the constant [`PipelineAnalysis::ps_extra_cycles`], which the path
/// analysis adds to the ILP optimum.
pub struct PipelineAnalysis {
    times: HashMap<NodeId, u64>,
    branch_penalty: u64,
    ps_extra: u64,
    /// Solver node evaluations (scaling experiment).
    pub evaluations: u64,
}

pub(crate) struct PipeTransfer<'a> {
    pub(crate) cfg: &'a Cfg,
    pub(crate) hw: &'a HwConfig,
    pub(crate) ca: &'a CacheAnalysis,
    /// Edges the value analysis proved infeasible (not propagated).
    pub(crate) infeasible: std::collections::HashSet<stamp_ai::IEdgeId>,
}

impl PipeTransfer<'_> {
    /// Walks a block from one incoming pipeline state, returning the
    /// cycle count (excluding the outgoing control-transfer penalty) and
    /// the outgoing state.
    pub(crate) fn walk(&self, icfg: &Icfg, node: NodeId, entry: PipeState) -> (u64, PipeState) {
        let n = icfg.node(node);
        let block = self.cfg.block(n.block);
        let t = self.hw.timing;
        let mut cycles: u64 = 0;
        let mut pending = entry.pending_load;
        for &(addr, insn) in &block.insns {
            let class = self.ca.class(addr, n.ctx);
            let mut cost: u64 = 1;
            // Instruction fetch: guaranteed hits cost nothing extra;
            // persistent fetches are priced as hits here and pay their
            // single possible miss via the ps_extra constant.
            let fetch_hit = matches!(
                class.map(|c| c.fetch),
                Some(Classification::AlwaysHit | Classification::Persistent)
            );
            if !fetch_hit {
                cost += t.i_miss_penalty as u64;
            }
            // EX occupancy.
            if let Insn::Alu { op, .. } = insn {
                cost += t.ex_stall(op.is_mul(), op.is_div()) as u64;
            }
            // Load-use hazard.
            if t.load_use_hazard {
                if let Some(dest) = pending {
                    if insn.uses().contains(dest) {
                        cost += 1;
                    }
                }
            }
            // Data access (persistent: see fetch comment above).
            if insn.is_load() {
                let data_hit = matches!(
                    class.and_then(|c| c.data),
                    Some(Classification::AlwaysHit | Classification::Persistent)
                );
                if !data_hit {
                    cost += t.d_miss_penalty as u64;
                }
            }
            pending = match insn {
                Insn::Load { .. } => insn.def(),
                _ => None,
            };
            cycles += cost;
        }
        (cycles, PipeState { pending_load: pending })
    }
}

impl Transfer for PipeTransfer<'_> {
    type State = PipeSet;

    fn boundary(&self) -> PipeSet {
        PipeSet::of(PipeState::clean())
    }

    fn transfer(&mut self, icfg: &Icfg, node: NodeId, input: &PipeSet) -> PipeSet {
        let mut out = PipeSet::empty();
        for s in input.iter() {
            let (_, exit) = self.walk(icfg, node, *s);
            out.insert(exit);
        }
        if out.is_empty() {
            out.insert(PipeState::clean());
        }
        out
    }

    fn edge<'s>(
        &mut self,
        _icfg: &Icfg,
        edge: &IEdge,
        state: &'s PipeSet,
    ) -> Option<std::borrow::Cow<'s, PipeSet>> {
        if self.infeasible.contains(&edge.id) {
            None
        } else {
            Some(std::borrow::Cow::Borrowed(state))
        }
    }
}

impl PipelineAnalysis {
    /// Runs the pipeline analysis over the supergraph.
    pub fn run(
        hw: &HwConfig,
        cfg: &Cfg,
        icfg: &Icfg,
        ca: &CacheAnalysis,
        va: &stamp_value::ValueAnalysis,
    ) -> PipelineAnalysis {
        let mut transfer = PipeTransfer {
            cfg,
            hw,
            ca,
            infeasible: va.infeasible_edges().iter().copied().collect(),
        };
        let fixpoint = solve(icfg, &mut transfer, u32::MAX);

        let mut times = HashMap::new();
        let universe = PipeSet::universe();
        for nd in icfg.nodes() {
            // Unreached nodes (dead code under the value analysis) still
            // get a sound bound — over all pipeline states — so that the
            // path analysis can optionally ignore infeasibility facts.
            let input = fixpoint.input(nd.id).unwrap_or(&universe);
            let t = input.iter().map(|s| transfer.walk(icfg, nd.id, *s).0).max().unwrap_or(0);
            times.insert(nd.id, t);
        }
        let ps_extra = ca.ps_fetch_lines().len() as u64 * hw.timing.i_miss_penalty as u64
            + ca.ps_data_lines().len() as u64 * hw.timing.d_miss_penalty as u64;
        PipelineAnalysis {
            times,
            branch_penalty: hw.timing.branch_penalty as u64,
            ps_extra,
            evaluations: fixpoint.evaluations,
        }
    }

    /// Assembles a result from precomputed parts (summarized mode).
    pub(crate) fn from_parts(
        times: HashMap<NodeId, u64>,
        branch_penalty: u64,
        ps_extra: u64,
        evaluations: u64,
    ) -> PipelineAnalysis {
        PipelineAnalysis { times, branch_penalty, ps_extra, evaluations }
    }

    /// One-time miss budget for all persistent lines (added to the ILP
    /// optimum by the path analysis; see the struct documentation).
    pub fn ps_extra_cycles(&self) -> u64 {
        self.ps_extra
    }

    /// Worst-case cycles of one node (block × context), excluding the
    /// outgoing control-transfer penalty. `None` for unreachable nodes.
    pub fn time(&self, node: NodeId) -> Option<u64> {
        self.times.get(&node).copied()
    }

    /// Extra cycles charged when execution leaves a node along `edge`
    /// (the taken-transfer penalty of the hardware model).
    pub fn edge_penalty(&self, cfg: &Cfg, icfg: &Icfg, edge: &IEdge) -> u64 {
        let _ = icfg;
        match edge.kind {
            // Calls and returns are always taken transfers.
            IEdgeKind::Call { .. } | IEdgeKind::Return { .. } => self.branch_penalty,
            IEdgeKind::Intra { cfg_edge, .. } => {
                let e = cfg.edge(cfg_edge);
                match e.kind {
                    EdgeKind::Taken => self.branch_penalty,
                    EdgeKind::Fall | EdgeKind::CallFall => 0,
                }
            }
        }
    }

    /// All per-node times.
    pub fn times(&self) -> &HashMap<NodeId, u64> {
        &self.times
    }
}

impl stamp_codec::Codec for PipelineAnalysis {
    fn enc(&self, e: &mut stamp_codec::Enc) {
        self.times.enc(e);
        e.u64(self.branch_penalty);
        e.u64(self.ps_extra);
        e.u64(self.evaluations);
    }
    fn dec(d: &mut stamp_codec::Dec) -> Result<PipelineAnalysis, stamp_codec::CodecError> {
        Ok(PipelineAnalysis {
            times: HashMap::dec(d)?,
            branch_penalty: d.u64()?,
            ps_extra: d.u64()?,
            evaluations: d.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stamp_ai::VivuConfig;
    use stamp_cfg::CfgBuilder;
    use stamp_isa::asm::assemble;
    use stamp_sim::Simulator;
    use stamp_value::{ValueAnalysis, ValueOptions};

    fn analyze(src: &str, hw: &HwConfig) -> (stamp_isa::Program, Cfg, Icfg, PipelineAnalysis) {
        let p = assemble(src).expect("assembles");
        let cfg = CfgBuilder::new(&p).build().expect("builds");
        let icfg = Icfg::build(&cfg, &VivuConfig::default()).expect("expands");
        let va = ValueAnalysis::run(&p, hw, &cfg, &icfg, &ValueOptions::default());
        let ca = CacheAnalysis::run(hw, &cfg, &icfg, &va);
        let pa = PipelineAnalysis::run(hw, &cfg, &icfg, &ca, &va);
        (p, cfg, icfg, pa)
    }

    /// Sums node times plus edge penalties along the unique path of a
    /// straight-line (single-path) program.
    fn straight_line_bound(icfg: &Icfg, cfg: &Cfg, pa: &PipelineAnalysis) -> u64 {
        let mut total = 0;
        let mut node = icfg.entry();
        loop {
            total += pa.time(node).expect("reachable");
            let mut next = None;
            for e in icfg.succs(node) {
                total += pa.edge_penalty(cfg, icfg, &e);
                next = Some(e.to);
            }
            match next {
                Some(n) => node = n,
                None => return total,
            }
        }
    }

    #[test]
    fn straight_line_matches_simulator_exactly() {
        // Deterministic single-path program: the static bound and the
        // simulator must agree cycle for cycle.
        let src = "\
            .text
            main: li r1, 3
                  mul r2, r1, r1
                  la r3, v
                  lw r4, 0(r3)
                  add r5, r4, r4    ; load-use hazard
                  sw r5, 0(r3)
                  call f
                  halt
            f:    div r6, r2, r1
                  ret
            .data
            v:    .word 123
        ";
        for hw in [HwConfig::ideal(), HwConfig::default(), HwConfig::no_cache()] {
            let (p, cfg, icfg, pa) = analyze(src, &hw);
            let bound = straight_line_bound(&icfg, &cfg, &pa);
            let mut sim = Simulator::new(&p, &hw);
            let res = sim.run(10_000).expect("no fault");
            assert_eq!(
                bound, res.cycles,
                "static {bound} vs simulated {} under {hw:?}",
                res.cycles
            );
        }
    }

    #[test]
    fn hazard_counted_only_when_immediate() {
        let src = "\
            .text
            main: la r1, v
                  lw r2, 0(r1)
                  nop
                  add r3, r2, r2    ; no hazard: nop in between
                  halt
            .data
            v:    .word 1
        ";
        let hw = HwConfig::ideal();
        let (p, cfg, icfg, pa) = analyze(src, &hw);
        let bound = straight_line_bound(&icfg, &cfg, &pa);
        let mut sim = Simulator::new(&p, &hw);
        assert_eq!(bound, sim.run(1000).unwrap().cycles);
    }

    #[test]
    fn hazard_crosses_block_boundary() {
        // The load is the last instruction of one block; the use is the
        // first of the next (branch target), so the hazard state must
        // survive the block transition.
        let src = "\
            .text
            main: la r1, v
                  lw r2, 0(r1)
                  beq r0, r0, use
                  nop
            use:  add r3, r2, r2
                  halt
            .data
            v:    .word 5
        ";
        let hw = HwConfig::ideal();
        let (p, _cfg, icfg, pa) = analyze(src, &hw);
        let mut sim = Simulator::new(&p, &hw);
        let simulated = sim.run(1000).unwrap().cycles;
        // Follow the taken path only.
        let mut total = 0;
        let mut node = icfg.entry();
        let cfg = CfgBuilder::new(&p).build().unwrap();
        loop {
            total += pa.time(node).unwrap();
            // Prefer the taken edge (this program's actual path).
            let mut next = None;
            for e in icfg.succs(node) {
                let feasible = match e.kind {
                    IEdgeKind::Intra { cfg_edge, .. } => cfg.edge(cfg_edge).kind != EdgeKind::Fall,
                    _ => true,
                };
                if feasible {
                    total += pa.edge_penalty(&cfg, &icfg, &e);
                    next = Some(e.to);
                }
            }
            match next {
                Some(n) => node = n,
                None => break,
            }
        }
        assert_eq!(total, simulated);
    }

    #[test]
    fn steady_state_loop_blocks_are_cheap() {
        // `.align 16` keeps the loop body on its own I-cache line so the
        // first iteration is genuinely cold.
        let src = "\
            .text\nmain: li r1, 50\n.align 16\nloop: addi r1, r1, -1\nbnez r1, loop\nhalt\n";
        let hw = HwConfig::default();
        let (_p, _cfg, icfg, pa) = analyze(src, &hw);
        // Find the loop-body nodes: iteration 0 (cold) and ≥1 (warm).
        let mut times: Vec<u64> = Vec::new();
        for nd in icfg.nodes() {
            if let Some(t) = pa.time(nd.id) {
                times.push(t);
            }
        }
        // The warm copy of the two-instruction body costs exactly 2
        // cycles; the cold copy pays I-cache misses.
        assert!(times.contains(&2), "warm body bound missing: {times:?}");
        assert!(times.iter().any(|&t| t >= 12), "cold body bound missing: {times:?}");
    }
}
