//! # stamp-exec — the batch execution pool
//!
//! A small scoped worker pool built directly on [`std::thread::scope`]
//! (the build environment has no crates.io access, so no rayon). Jobs
//! are drawn from a shared queue — an atomic index over the job slice,
//! the degenerate but contention-free form of work stealing: every idle
//! worker "steals" the next unclaimed index — and results land in a
//! slot vector indexed by job position, so the output order is the
//! input order no matter how the scheduler interleaves workers.
//!
//! Three properties matter to the callers in `stamp_core`:
//!
//! 1. **Deterministic results.** [`Pool::map`] returns `Vec<T>` in job
//!    order. Parallel execution affects only wall time, never the
//!    content or order of results — the batch-report determinism
//!    invariant (parallel run bit-identical to serial) reduces to each
//!    job being a pure function of its input, which `stamp` analyses
//!    are: every job owns its whole analysis, so the `Rc`-based
//!    copy-on-write state inside the kernel stays thread-local.
//! 2. **Panic propagation with provenance.** A panicking job does not
//!    abort the process or deadlock the pool: remaining workers drain,
//!    and the pool returns [`PoolError::JobPanicked`] naming the lowest
//!    failing job index (lowest, so the error too is deterministic when
//!    several jobs fail — see the proof sketch at the poison flag).
//! 3. **No idle spin.** Workers exit as soon as the queue is empty or a
//!    panic has been recorded; the scope join is the only barrier.
//!
//! # Example
//!
//! ```
//! use stamp_exec::Pool;
//!
//! let squares = Pool::new(4)
//!     .map(&[1u64, 2, 3, 4, 5], |_idx, &x| x * x)
//!     .unwrap();
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

pub mod cancel;
mod slot;

pub use cancel::{CancelToken, Cancelled};
pub use slot::{Slot, SlotClaim, SlotFillGuard};

/// A failure of a pool run.
#[derive(Debug)]
pub enum PoolError {
    /// A job panicked. Carries the job's index, its label (supplied by
    /// [`Pool::map_labeled`], the index rendered as text otherwise) and
    /// the panic payload rendered as text.
    JobPanicked {
        /// Index of the failing job in the input slice.
        index: usize,
        /// The job's label (its name in batch runs).
        label: String,
        /// The panic message.
        message: String,
    },
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::JobPanicked { index, label, message } => {
                write!(f, "job #{index} `{label}` panicked: {message}")
            }
        }
    }
}

impl std::error::Error for PoolError {}

/// The per-job result of [`Pool::map_labeled_deadline`]: the job's
/// value, or a record that its deadline expired first.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeadlineOutcome<T> {
    /// The job completed within its deadline.
    Done(T),
    /// The job was cancelled at a checkpoint after its deadline passed.
    DeadlineExceeded,
}

impl<T> DeadlineOutcome<T> {
    /// The completed value, if the job finished in time.
    pub fn into_done(self) -> Option<T> {
        match self {
            DeadlineOutcome::Done(v) => Some(v),
            DeadlineOutcome::DeadlineExceeded => None,
        }
    }
}

/// Renders a panic payload (the `Box<dyn Any>` from `catch_unwind`) as
/// text: `&str` and `String` payloads verbatim, anything else opaquely.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// The worker pool. Holds only a worker count — threads are scoped to
/// each [`Pool::map`] call, so a `Pool` is free to construct and keep.
#[derive(Clone, Copy, Debug)]
pub struct Pool {
    workers: usize,
}

impl Pool {
    /// A pool running jobs on `workers` threads. `0` is treated as `1`
    /// (the serial pool, which still goes through the same queue so the
    /// execution path is identical to the parallel one).
    pub fn new(workers: usize) -> Pool {
        Pool { workers: workers.max(1) }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `f` over every item, in parallel across the pool's workers,
    /// returning the results **in item order**.
    ///
    /// # Errors
    ///
    /// [`PoolError::JobPanicked`] if any job panics; the error names the
    /// lowest failing index.
    pub fn map<I, T, F>(&self, items: &[I], f: F) -> Result<Vec<T>, PoolError>
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync,
    {
        self.map_labeled(items, |i, _| i.to_string(), f)
    }

    /// Like [`Pool::map`], but with a labelling function so panics can
    /// be attributed by name ("which job of the batch failed") rather
    /// than by index alone.
    pub fn map_labeled<I, T, L, F>(&self, items: &[I], label: L, f: F) -> Result<Vec<T>, PoolError>
    where
        I: Sync,
        T: Send,
        L: Fn(usize, &I) -> String + Sync,
        F: Fn(usize, &I) -> T + Sync,
    {
        let outcomes = self.map_labeled_deadline(items, label, None, f)?;
        Ok(outcomes
            .into_iter()
            .map(|o| match o {
                DeadlineOutcome::Done(v) => v,
                DeadlineOutcome::DeadlineExceeded => {
                    unreachable!("no deadline was set, so no job can exceed one")
                }
            })
            .collect())
    }

    /// Like [`Pool::map_labeled`], but each job runs under its own
    /// [`CancelToken`] carrying `deadline` (measured from that job's
    /// start, not from the batch's). A job whose kernels reach a
    /// [`cancel::checkpoint`] after its deadline unwinds with the
    /// [`Cancelled`] marker and lands as
    /// [`DeadlineOutcome::DeadlineExceeded`] in its result slot; the
    /// rest of the batch keeps running. Genuine panics still poison the
    /// pool exactly as in [`Pool::map_labeled`].
    pub fn map_labeled_deadline<I, T, L, F>(
        &self,
        items: &[I],
        label: L,
        deadline: Option<Duration>,
        f: F,
    ) -> Result<Vec<DeadlineOutcome<T>>, PoolError>
    where
        I: Sync,
        T: Send,
        L: Fn(usize, &I) -> String + Sync,
        F: Fn(usize, &I) -> T + Sync,
    {
        if items.is_empty() {
            return Ok(Vec::new());
        }
        let workers = self.workers.min(items.len());

        // The shared queue: the next unclaimed job index.
        let next = AtomicUsize::new(0);
        // Set as soon as any job panics, so workers stop claiming jobs.
        // Poisoning cannot hide the lowest panicking job L from the
        // error: `fetch_add` hands out indices as a contiguous prefix
        // 0..k and a claimed job always runs (the poison check precedes
        // the claim), so if any panicker was claimed then L — which has
        // a smaller index — was claimed, ran, panicked, and won the
        // min-index race below; if no panicker was claimed, nothing
        // poisoned and every job ran. Either way the reported index is
        // exactly L, independent of scheduling.
        let poisoned = AtomicBool::new(false);
        // One result slot per job, filled out of order, read in order.
        let slots: Vec<Mutex<Option<DeadlineOutcome<T>>>> =
            (0..items.len()).map(|_| Mutex::new(None)).collect();
        // The lowest-index panic seen so far.
        let first_panic: Mutex<Option<(usize, String)>> = Mutex::new(None);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    if poisoned.load(Ordering::Acquire) {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    // AssertUnwindSafe: each job owns its state; a
                    // panicking job leaves nothing shared behind (its
                    // result slot simply stays empty).
                    let run = || match deadline {
                        Some(budget) => {
                            let token = CancelToken::with_deadline(budget);
                            cancel::with_token(&token, || f(i, &items[i]))
                        }
                        None => f(i, &items[i]),
                    };
                    match catch_unwind(AssertUnwindSafe(run)) {
                        Ok(v) => *slots[i].lock().unwrap() = Some(DeadlineOutcome::Done(v)),
                        // A cancellation unwind is a per-job timeout,
                        // not a crash: record it and keep the pool
                        // healthy for the remaining jobs.
                        Err(payload) if payload.is::<Cancelled>() => {
                            *slots[i].lock().unwrap() = Some(DeadlineOutcome::DeadlineExceeded);
                        }
                        Err(payload) => {
                            let msg = panic_message(payload.as_ref());
                            let mut slot = first_panic.lock().unwrap();
                            match &*slot {
                                Some((lowest, _)) if *lowest <= i => {}
                                _ => *slot = Some((i, msg)),
                            }
                            poisoned.store(true, Ordering::Release);
                        }
                    }
                });
            }
        });

        if let Some((index, message)) = first_panic.into_inner().unwrap() {
            return Err(PoolError::JobPanicked {
                index,
                label: label(index, &items[index]),
                message,
            });
        }
        Ok(slots
            .into_iter()
            .map(|s| s.into_inner().unwrap().expect("no panic recorded, so every slot is filled"))
            .collect())
    }
}

/// The machine's available parallelism (for a `--jobs` default), `1`
/// when it cannot be determined.
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order_for_any_worker_count() {
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for workers in [1, 2, 3, 8, 200] {
            let got = Pool::new(workers).map(&items, |_, &x| x * 3 + 1).unwrap();
            assert_eq!(got, expect, "workers={workers}");
        }
    }

    #[test]
    fn empty_input_spawns_nothing_and_returns_empty() {
        let got: Vec<u32> = Pool::new(8).map(&[] as &[u32], |_, _| unreachable!()).unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn zero_workers_is_the_serial_pool() {
        assert_eq!(Pool::new(0).workers(), 1);
        let got = Pool::new(0).map(&[10u32, 20], |i, &x| x + i as u32).unwrap();
        assert_eq!(got, vec![10, 21]);
    }

    #[test]
    fn panic_is_propagated_with_label_and_message() {
        let items = ["ok-1", "explodes", "ok-2"];
        let err = Pool::new(2)
            .map_labeled(
                &items,
                |_, name| name.to_string(),
                |_, &name| {
                    if name == "explodes" {
                        panic!("boom in {name}");
                    }
                    name.len()
                },
            )
            .unwrap_err();
        let PoolError::JobPanicked { index, label, message } = err;
        assert_eq!(index, 1);
        assert_eq!(label, "explodes");
        assert!(message.contains("boom in explodes"), "{message}");
    }

    #[test]
    fn lowest_failing_index_wins_when_serial() {
        // With one worker the queue is drained in order, so the first
        // panic encountered is job 0 regardless of later failures.
        let err = Pool::new(1).map(&[0u32, 1, 2], |i, _| panic!("job {i}")).unwrap_err();
        let PoolError::JobPanicked { index, message, .. } = err;
        assert_eq!(index, 0);
        assert!(message.contains("job 0"));
    }

    #[test]
    fn error_display_names_the_job() {
        let err = PoolError::JobPanicked {
            index: 3,
            label: "matmult@no-cache".into(),
            message: "oops".into(),
        };
        assert_eq!(err.to_string(), "job #3 `matmult@no-cache` panicked: oops");
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
    }

    #[test]
    fn deadline_map_times_out_slow_jobs_and_completes_fast_ones() {
        // Job 1 spins through checkpoints against an already-expired
        // deadline; jobs 0 and 2 never checkpoint and finish normally.
        let got = Pool::new(2)
            .map_labeled_deadline(
                &[0u32, 1, 2],
                |i, _| i.to_string(),
                Some(Duration::from_millis(0)),
                |_, &x| {
                    if x == 1 {
                        loop {
                            cancel::checkpoint();
                        }
                    }
                    x * 10
                },
            )
            .unwrap();
        assert_eq!(
            got,
            vec![
                DeadlineOutcome::Done(0),
                DeadlineOutcome::DeadlineExceeded,
                DeadlineOutcome::Done(20),
            ]
        );
    }

    #[test]
    fn deadline_map_still_propagates_real_panics() {
        let err = Pool::new(2)
            .map_labeled_deadline(
                &["fine", "crashes"],
                |_, name| name.to_string(),
                Some(Duration::from_secs(3600)),
                |_, &name| {
                    if name == "crashes" {
                        panic!("genuine crash");
                    }
                    name.len()
                },
            )
            .unwrap_err();
        let PoolError::JobPanicked { label, message, .. } = err;
        assert_eq!(label, "crashes");
        assert!(message.contains("genuine crash"));
    }

    #[test]
    fn no_deadline_means_no_token_and_no_timeouts() {
        let got = Pool::new(2)
            .map_labeled_deadline(
                &[1u32, 2, 3],
                |i, _| i.to_string(),
                None,
                |_, &x| {
                    for _ in 0..1000 {
                        cancel::checkpoint();
                    }
                    x
                },
            )
            .unwrap();
        assert!(got.iter().all(|o| o.into_done().is_some()));
    }
}
