//! A claim-or-wait slot: the synchronization primitive behind the
//! content-addressed artifact store in `stamp_core`.
//!
//! A [`Slot`] holds at most one value, computed by exactly one thread.
//! The first claimant gets a [`SlotFillGuard`] and must compute the
//! value; every later claimant blocks until the value is published and
//! then receives a clone. The guard is panic-safe: dropping it without
//! fulfilling (a panicking or erroring computation) returns the slot to
//! the vacant state and wakes all waiters, one of which becomes the new
//! claimant — a crashed producer can therefore never deadlock the pool.
//!
//! Deadlock freedom for the artifact store follows from a discipline the
//! callers keep: a thread holding a fill guard runs a *pure* computation
//! that claims no other slot, so the wait-for graph has no edges out of
//! a computing thread and cycles are impossible.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use stamp_exec::{Slot, SlotClaim};
//!
//! let slot: Arc<Slot<u32>> = Arc::new(Slot::new());
//! match Slot::claim(&slot) {
//!     SlotClaim::Fill(guard) => guard.fulfill(42),
//!     SlotClaim::Ready { .. } => unreachable!("first claim fills"),
//! }
//! match Slot::claim(&slot) {
//!     SlotClaim::Ready { value, waited } => {
//!         assert_eq!(value, 42);
//!         assert!(!waited);
//!     }
//!     SlotClaim::Fill(_) => unreachable!("second claim hits"),
//! }
//! ```

use std::sync::{Arc, Condvar, Mutex};

/// The slot's lifecycle: vacant → computing → ready (or back to vacant
/// if the computing thread drops its guard without fulfilling).
enum State<V> {
    Vacant,
    Computing,
    Ready(V),
}

/// A write-once cell with claim/wait semantics (see the module docs).
pub struct Slot<V> {
    state: Mutex<State<V>>,
    cv: Condvar,
}

impl<V> Default for Slot<V> {
    fn default() -> Slot<V> {
        Slot { state: Mutex::new(State::Vacant), cv: Condvar::new() }
    }
}

/// The outcome of [`Slot::claim`].
pub enum SlotClaim<V> {
    /// The value is present. `waited` is `true` when this thread
    /// blocked while another thread computed it (reuse-after-wait, as
    /// opposed to an immediate hit).
    Ready {
        /// A clone of the slot's value.
        value: V,
        /// Whether the claim blocked on an in-flight computation.
        waited: bool,
    },
    /// This thread is the claimant and must compute the value, then
    /// [`SlotFillGuard::fulfill`] it (or drop the guard to release the
    /// claim).
    Fill(SlotFillGuard<V>),
}

impl<V> Slot<V> {
    /// An empty slot.
    pub fn new() -> Slot<V> {
        Slot { state: Mutex::new(State::Vacant), cv: Condvar::new() }
    }
}

impl<V: Clone> Slot<V> {
    /// Claims the slot: returns its value if present (blocking while
    /// another thread computes it), or a fill guard making the caller
    /// the computing thread.
    pub fn claim(slot: &Arc<Slot<V>>) -> SlotClaim<V> {
        let mut st = slot.state.lock().unwrap();
        let mut waited = false;
        loop {
            match &*st {
                State::Vacant => {
                    *st = State::Computing;
                    return SlotClaim::Fill(SlotFillGuard {
                        slot: Arc::clone(slot),
                        fulfilled: false,
                    });
                }
                State::Computing => {
                    waited = true;
                    st = slot.cv.wait(st).unwrap();
                }
                State::Ready(v) => return SlotClaim::Ready { value: v.clone(), waited },
            }
        }
    }

    /// The value, if already published (never blocks).
    pub fn peek(&self) -> Option<V> {
        match &*self.state.lock().unwrap() {
            State::Ready(v) => Some(v.clone()),
            State::Vacant | State::Computing => None,
        }
    }
}

/// Exclusive permission to fill a [`Slot`]. Dropped without
/// [`SlotFillGuard::fulfill`], it vacates the slot and wakes waiters so
/// one of them can claim it instead.
pub struct SlotFillGuard<V> {
    slot: Arc<Slot<V>>,
    fulfilled: bool,
}

impl<V> SlotFillGuard<V> {
    /// Publishes the value and wakes every waiter.
    pub fn fulfill(mut self, value: V) {
        *self.slot.state.lock().unwrap() = State::Ready(value);
        self.fulfilled = true;
        self.slot.cv.notify_all();
    }
}

impl<V> Drop for SlotFillGuard<V> {
    fn drop(&mut self) {
        if !self.fulfilled {
            *self.slot.state.lock().unwrap() = State::Vacant;
            self.slot.cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn first_claim_fills_later_claims_hit() {
        let slot: Arc<Slot<String>> = Arc::new(Slot::new());
        assert!(slot.peek().is_none());
        match Slot::claim(&slot) {
            SlotClaim::Fill(g) => g.fulfill("computed".to_string()),
            SlotClaim::Ready { .. } => panic!("first claim must fill"),
        }
        assert_eq!(slot.peek().as_deref(), Some("computed"));
        match Slot::claim(&slot) {
            SlotClaim::Ready { value, waited } => {
                assert_eq!(value, "computed");
                assert!(!waited, "no computation was in flight");
            }
            SlotClaim::Fill(_) => panic!("second claim must hit"),
        }
    }

    #[test]
    fn dropping_the_guard_vacates_the_slot() {
        let slot: Arc<Slot<u32>> = Arc::new(Slot::new());
        match Slot::claim(&slot) {
            SlotClaim::Fill(g) => drop(g),
            SlotClaim::Ready { .. } => unreachable!(),
        }
        // The claim is released: the next claimant fills again.
        match Slot::claim(&slot) {
            SlotClaim::Fill(g) => g.fulfill(7),
            SlotClaim::Ready { .. } => panic!("vacated slot must be claimable"),
        }
        assert_eq!(slot.peek(), Some(7));
    }

    #[test]
    fn waiters_block_until_fulfilled_and_report_waiting() {
        let slot: Arc<Slot<u64>> = Arc::new(Slot::new());
        let computed = AtomicUsize::new(0);
        let waited_hits = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let guard = match Slot::claim(&slot) {
                SlotClaim::Fill(g) => g,
                SlotClaim::Ready { .. } => unreachable!(),
            };
            for _ in 0..4 {
                scope.spawn(|| match Slot::claim(&slot) {
                    SlotClaim::Ready { value, waited } => {
                        assert_eq!(value, 99);
                        if waited {
                            waited_hits.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    SlotClaim::Fill(_) => panic!("value is being computed"),
                });
            }
            // Give the waiters a moment to actually block, then publish.
            std::thread::sleep(std::time::Duration::from_millis(20));
            computed.fetch_add(1, Ordering::Relaxed);
            guard.fulfill(99);
        });
        assert_eq!(computed.load(Ordering::Relaxed), 1);
        assert!(waited_hits.load(Ordering::Relaxed) >= 1, "some thread should have blocked");
    }

    #[test]
    fn a_panicking_producer_hands_the_claim_to_a_waiter() {
        let slot: Arc<Slot<u32>> = Arc::new(Slot::new());
        std::thread::scope(|scope| {
            let guard = match Slot::claim(&slot) {
                SlotClaim::Fill(g) => g,
                SlotClaim::Ready { .. } => unreachable!(),
            };
            let waiter = scope.spawn(|| match Slot::claim(&slot) {
                // The waiter is promoted to claimant and computes.
                SlotClaim::Fill(g) => {
                    g.fulfill(5);
                    true
                }
                SlotClaim::Ready { .. } => false,
            });
            std::thread::sleep(std::time::Duration::from_millis(20));
            // Simulate the producer dying mid-computation.
            drop(guard);
            assert!(waiter.join().unwrap(), "waiter should have been promoted");
        });
        assert_eq!(slot.peek(), Some(5));
    }
}
