//! Cooperative cancellation: tokens, deadlines, and checkpoints.
//!
//! A [`CancelToken`] carries an optional deadline and a manual cancel
//! flag. Long-running kernels call [`checkpoint`] from their hot loops;
//! when the thread's installed token has expired (or been cancelled),
//! the checkpoint unwinds with the [`Cancelled`] marker payload. The
//! unwind is caught at the job boundary (the pool's deadline-aware
//! entry points, or `stamp_core`'s guarded job runner) and turned into
//! a structured timeout — it is never observable as an ordinary panic.
//!
//! Three design points keep this safe and cheap:
//!
//! 1. **Cooperative, not preemptive.** Nothing is interrupted mid-step;
//!    cancellation only happens at checkpoints, which the analysis
//!    kernels place between fixpoint iterations and phase boundaries —
//!    points where no locks are held, so an unwind can never poison a
//!    shared mutex. (The artifact store's in-flight slot is released by
//!    its guard's `Drop`, which is the designed hand-off path.)
//! 2. **Throttled clock reads.** [`checkpoint`] consults the token (and
//!    the monotonic clock) only every 64th call, so a checkpoint in an
//!    inner loop costs a thread-local counter bump, not a syscall.
//! 3. **Scoped installation.** [`with_token`] installs the token in a
//!    thread-local for the duration of one closure and restores the
//!    previous token on the way out — including the unwinding way out —
//!    so worker threads can run many differently-deadlined jobs without
//!    leakage between them.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The panic payload used for cancellation unwinds. Code that catches
/// job panics downcasts to this type to distinguish a deadline from a
/// genuine crash.
#[derive(Clone, Copy, Debug)]
pub struct Cancelled;

#[derive(Debug, Default)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// A shareable cancellation handle: a manual flag plus an optional
/// deadline, fixed at construction. Clones share state.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A token that never expires on its own (cancel it manually).
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A token that expires `budget` from now.
    pub fn with_deadline(budget: Duration) -> CancelToken {
        let deadline = Instant::now().checked_add(budget);
        CancelToken { inner: Arc::new(Inner { cancelled: AtomicBool::new(false), deadline }) }
    }

    /// Requests cancellation; checkpoints observe it on their next
    /// consultation.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Whether the token has been cancelled or its deadline has passed.
    /// Reads the clock, so callers in hot paths should throttle (as
    /// [`checkpoint`] does).
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Acquire) {
            return true;
        }
        match self.inner.deadline {
            Some(d) => Instant::now() >= d,
            None => false,
        }
    }
}

thread_local! {
    /// The token governing the current job on this thread, if any.
    static CURRENT: Cell<Option<CancelToken>> = const { Cell::new(None) };
    /// Checkpoint throttle: only every 64th call consults the token.
    static TICK: Cell<u32> = const { Cell::new(0) };
}

/// Restores the previously-installed token when dropped — on normal
/// return and on unwind alike.
struct Restore(Option<CancelToken>);

impl Drop for Restore {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.0.take()));
    }
}

/// Runs `f` with `token` installed as the thread's current token, so
/// every [`checkpoint`] inside observes it. Nesting is scoped: the
/// previous token is restored afterwards, even if `f` unwinds.
pub fn with_token<R>(token: &CancelToken, f: impl FnOnce() -> R) -> R {
    let previous = CURRENT.with(|c| c.replace(Some(token.clone())));
    let _restore = Restore(previous);
    f()
}

/// A cancellation point for hot loops. Cheap (a counter bump) on most
/// calls; every 64th call consults the installed token and unwinds with
/// [`Cancelled`] if it has expired. A no-op when no token is installed.
#[inline]
pub fn checkpoint() {
    let due = TICK.with(|t| {
        let v = t.get().wrapping_add(1);
        t.set(v);
        v % 64 == 0
    });
    if due {
        checkpoint_now();
    }
}

/// An unthrottled cancellation point, for phase boundaries and other
/// coarse-grained locations where one clock read per call is fine.
pub fn checkpoint_now() {
    let expired = CURRENT.with(|c| {
        let token = c.take();
        let expired = token.as_ref().is_some_and(CancelToken::is_cancelled);
        c.set(token);
        expired
    });
    if expired {
        std::panic::panic_any(Cancelled);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn checkpoint_without_a_token_is_a_no_op() {
        for _ in 0..1000 {
            checkpoint();
        }
        checkpoint_now();
    }

    #[test]
    fn manual_cancel_unwinds_with_the_marker() {
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        token.cancel();
        let payload = catch_unwind(AssertUnwindSafe(|| {
            with_token(&token, checkpoint_now);
        }))
        .unwrap_err();
        assert!(payload.is::<Cancelled>(), "payload must be the Cancelled marker");
    }

    #[test]
    fn expired_deadline_trips_a_throttled_checkpoint() {
        let token = CancelToken::with_deadline(Duration::from_millis(0));
        let payload = catch_unwind(AssertUnwindSafe(|| {
            with_token(&token, || {
                for _ in 0..10_000 {
                    checkpoint();
                }
            })
        }))
        .unwrap_err();
        assert!(payload.is::<Cancelled>());
    }

    #[test]
    fn a_generous_deadline_does_not_fire() {
        let token = CancelToken::with_deadline(Duration::from_secs(3600));
        with_token(&token, || {
            for _ in 0..1000 {
                checkpoint();
            }
            checkpoint_now();
        });
    }

    #[test]
    fn tokens_are_scoped_and_restored_after_unwind() {
        let outer = CancelToken::new();
        let inner = CancelToken::new();
        inner.cancel();
        with_token(&outer, || {
            let r = catch_unwind(AssertUnwindSafe(|| with_token(&inner, checkpoint_now)));
            assert!(r.is_err(), "inner token was cancelled");
            // The outer (uncancelled) token is back in force.
            checkpoint_now();
        });
        // And outside, no token is installed at all.
        checkpoint_now();
    }

    #[test]
    fn clones_share_the_cancel_flag() {
        let token = CancelToken::new();
        let clone = token.clone();
        token.cancel();
        assert!(clone.is_cancelled());
    }
}
