//! Stress tests for the [`Slot`] claim/fill hand-off when claimants
//! panic: many concurrent waiters, a chain of dying producers, and the
//! promises that matter to the artifact store — every waiter is served
//! promptly, exactly one fulfill wins, and nothing deadlocks.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use stamp_exec::{Slot, SlotClaim};

/// How long any single waiter may block before the test calls it a
/// deadlock. Generous for CI; the hand-off itself is microseconds.
const PROMPTLY: Duration = Duration::from_secs(20);

#[test]
fn a_chain_of_panicking_claimants_cannot_starve_the_waiters() {
    const WAITERS: usize = 64;
    const CRASHES: usize = 8;

    let slot: Arc<Slot<Result<u32, String>>> = Arc::new(Slot::new());
    let crashes_left = Arc::new(AtomicUsize::new(CRASHES));
    let fulfills = Arc::new(AtomicUsize::new(0));
    let (tx, rx) = mpsc::channel();

    for id in 0..WAITERS {
        let slot = Arc::clone(&slot);
        let crashes_left = Arc::clone(&crashes_left);
        let fulfills = Arc::clone(&fulfills);
        let tx = tx.clone();
        std::thread::spawn(move || {
            // Claim until the value is readable. The first CRASHES
            // guard-holders die mid-computation (the unwind drops the
            // guard, vacating the slot and promoting a waiter); the
            // next holder publishes the value. A thread that crashed
            // as claimant re-claims as an ordinary waiter — exactly
            // like a pool worker that caught a job panic and moved on.
            let value = loop {
                let attempt = catch_unwind(AssertUnwindSafe(|| match Slot::claim(&slot) {
                    SlotClaim::Fill(guard) => {
                        if crashes_left
                            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                            != Err(0)
                        {
                            panic!("claimant died mid-computation");
                        }
                        fulfills.fetch_add(1, Ordering::SeqCst);
                        guard.fulfill(Err("stack: analysis failed".to_string()));
                        None
                    }
                    SlotClaim::Ready { value, .. } => Some(value),
                }));
                // Anything else means this thread fulfilled the slot
                // or died as the claimant: either way, claim again to
                // read the published value.
                if let Ok(Some(value)) = attempt {
                    break value;
                }
            };
            tx.send((id, value)).unwrap();
        });
    }
    drop(tx);

    for seen in 0..WAITERS {
        let (_, value) = rx
            .recv_timeout(PROMPTLY)
            .unwrap_or_else(|e| panic!("waiter starved after {seen}/{WAITERS} hand-offs: {e}"));
        assert_eq!(value, Err("stack: analysis failed".to_string()));
    }
    assert_eq!(fulfills.load(Ordering::SeqCst), 1, "exactly one fulfill must win");
    assert_eq!(crashes_left.load(Ordering::SeqCst), 0, "all scripted crashes happened");
}

#[test]
fn hand_off_storm_over_many_slots_never_double_fulfills() {
    // A smaller per-slot cast, repeated over many fresh slots, shakes
    // out interleavings the single big run might miss.
    const ROUNDS: usize = 50;
    const THREADS: usize = 8;

    for round in 0..ROUNDS {
        let slot: Arc<Slot<u64>> = Arc::new(Slot::new());
        let crashes_left = Arc::new(AtomicUsize::new(round % (THREADS - 1)));
        let fulfills = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                let slot = Arc::clone(&slot);
                let crashes_left = Arc::clone(&crashes_left);
                let fulfills = Arc::clone(&fulfills);
                scope.spawn(move || {
                    let _ = catch_unwind(AssertUnwindSafe(|| match Slot::claim(&slot) {
                        SlotClaim::Fill(guard) => {
                            if crashes_left.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                                n.checked_sub(1)
                            }) != Err(0)
                            {
                                panic!("scripted crash");
                            }
                            fulfills.fetch_add(1, Ordering::SeqCst);
                            guard.fulfill(round as u64);
                        }
                        SlotClaim::Ready { value, .. } => assert_eq!(value, round as u64),
                    }));
                });
            }
        });
        assert_eq!(fulfills.load(Ordering::SeqCst), 1, "round {round}: one fulfill");
        assert_eq!(slot.peek(), Some(round as u64), "round {round}: value published");
    }
}
