//! Property-based soundness of the abstract caches against the concrete
//! LRU reference: for random access sequences,
//!
//! * must-cache membership ⇒ concretely cached (hit guaranteed);
//! * concretely cached ⇒ may-cache membership;
//! * persistence: a persistent line misses at most once in total.

use proptest::prelude::*;
use stamp_cache::{MayCache, MustCache, PersCache};
use stamp_hw::CacheConfig;
use stamp_sim::LruCache;

fn geometry() -> impl Strategy<Value = CacheConfig> {
    prop_oneof![
        Just(CacheConfig::new(1, 2, 16)),
        Just(CacheConfig::new(2, 2, 16)),
        Just(CacheConfig::new(4, 1, 16)),
        Just(CacheConfig::new(2, 4, 32)),
    ]
}

/// Addresses drawn from a small pool so that conflicts actually happen.
fn accesses() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec((0u32..12).prop_map(|i| i * 16), 1..120)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn must_and_may_bracket_concrete(config in geometry(), seq in accesses()) {
        let mut concrete = LruCache::new(config);
        let mut must = MustCache::new(config);
        let mut may = MayCache::new(config);
        for &addr in &seq {
            // Check the invariants *before* each access (classification
            // uses the pre-state).
            prop_assert!(
                !must.definitely_cached(addr) || concrete.probe(addr),
                "must says hit but concrete misses at {addr:#x}"
            );
            prop_assert!(
                !concrete.probe(addr) || may.possibly_cached(addr),
                "concrete has {addr:#x} but may says definite miss"
            );
            concrete.access(addr);
            must.access(addr);
            may.access(addr);
        }
        // Invariants hold for every line afterwards, too.
        for line in (0u32..12).map(|i| i * 16) {
            prop_assert!(!must.definitely_cached(line) || concrete.probe(line));
            prop_assert!(!concrete.probe(line) || may.possibly_cached(line));
        }
    }

    #[test]
    fn join_preserves_bracketing(config in geometry(), seq1 in accesses(), seq2 in accesses()) {
        // Simulate a control-flow join: the abstract join must bracket
        // both concrete branches.
        let mut c1 = LruCache::new(config);
        let mut c2 = LruCache::new(config);
        let mut must1 = MustCache::new(config);
        let mut must2 = MustCache::new(config);
        let mut may1 = MayCache::new(config);
        let mut may2 = MayCache::new(config);
        for &a in &seq1 { c1.access(a); must1.access(a); may1.access(a); }
        for &a in &seq2 { c2.access(a); must2.access(a); may2.access(a); }
        must1.join_from(&must2);
        may1.join_from(&may2);
        for line in (0u32..12).map(|i| i * 16) {
            if must1.definitely_cached(line) {
                prop_assert!(c1.probe(line) && c2.probe(line),
                    "joined must guarantees {line:#x} but a branch misses it");
            }
            if c1.probe(line) || c2.probe(line) {
                prop_assert!(may1.possibly_cached(line),
                    "{line:#x} cached in a branch but joined may denies it");
            }
        }
    }

    #[test]
    fn persistence_bounds_ps_classified_misses(config in geometry(), seq in accesses()) {
        // The guarantee the WCET pricing relies on: among the accesses
        // that the persistence analysis classifies as persistent (age
        // below associativity in the PRE-state), each line misses at
        // most once per execution. This is exactly the budget charged by
        // `ps_extra_cycles`.
        let mut concrete = LruCache::new(config);
        let mut pers = PersCache::new(config);
        let mut ps_misses: std::collections::HashMap<u32, u32> = Default::default();
        for &addr in &seq {
            let line = config.line_addr(addr);
            let classified_ps = pers.persistent(line);
            let hit = concrete.access(addr);
            if classified_ps && !hit {
                *ps_misses.entry(line).or_insert(0) += 1;
            }
            pers.access(addr);
        }
        for (line, misses) in ps_misses {
            prop_assert!(
                misses <= 1,
                "line {line:#x} missed {misses} times at persistent-classified accesses"
            );
        }
    }

    #[test]
    fn clobber_is_sound_for_unknown_accesses(
        config in geometry(),
        seq in accesses(),
        surprise in (0u32..12).prop_map(|i| i * 16),
    ) {
        // An unknown access abstracted by clobber() must cover any
        // concrete choice of accessed line.
        let mut concrete = LruCache::new(config);
        let mut must = MustCache::new(config);
        for &a in &seq {
            concrete.access(a);
            must.access(a);
        }
        concrete.access(surprise); // the concrete unknown access
        must.clobber(None);
        for line in (0u32..12).map(|i| i * 16) {
            prop_assert!(
                !must.definitely_cached(line) || concrete.probe(line),
                "after clobber, must guarantees {line:#x} which {surprise:#x} evicted"
            );
        }
    }
}
