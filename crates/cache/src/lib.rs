//! # stamp-cache — cache analysis by abstract interpretation
//!
//! Implements the paper's cache-analysis phase: "cache analysis
//! classifies memory references as cache misses or hits", using the
//! must/may/persistence abstract domains of Ferdinand's LRU cache
//! analysis (the basis of aiT's cache phase).
//!
//! * **Must cache** ([`MustCache`]): upper bounds on LRU ages; a line
//!   present here is cached in *every* execution → **always hit**.
//! * **May cache** ([`MayCache`]): lower bounds on ages over the union of
//!   executions; a line absent here is cached in *no* execution →
//!   **always miss**.
//! * **Persistence** ([`PersCache`]): saturating age bounds that never
//!   forget a loaded line; a line that stays below associativity is
//!   loaded at most once → **persistent** (first access may miss, all
//!   later ones hit).
//!
//! Instruction fetches are classified from the instruction addresses
//! alone; data accesses take their *address ranges from the value
//! analysis* — exactly the dependency the paper describes ("Cache
//! analysis uses the results of value analysis to predict the behavior
//! of the (data) cache").
//!
//! Because the analysis runs per VIVU context, the first-iteration
//! contexts absorb the cold-cache misses and the steady-state contexts
//! typically classify as always-hit; this is how "miss once, then hit"
//! becomes visible to the pipeline analysis without explicit persistence
//! constraints in the ILP.
//!
//! # Example
//!
//! ```
//! use stamp_isa::asm::assemble;
//! use stamp_cfg::CfgBuilder;
//! use stamp_ai::{Icfg, VivuConfig};
//! use stamp_hw::HwConfig;
//! use stamp_value::{ValueAnalysis, ValueOptions};
//! use stamp_cache::{CacheAnalysis, Classification};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let p = assemble(".text\nmain: li r1, 4\nloop: addi r1, r1, -1\nbnez r1, loop\nhalt\n")?;
//! let hw = HwConfig::default();
//! let cfg = CfgBuilder::new(&p).build()?;
//! let icfg = Icfg::build(&cfg, &VivuConfig::default())?;
//! let va = ValueAnalysis::run(&p, &hw, &cfg, &icfg, &ValueOptions::default());
//! let ca = CacheAnalysis::run(&hw, &cfg, &icfg, &va);
//! // In the steady-state loop context the fetch always hits.
//! let stats = ca.fetch_stats();
//! assert!(stats.hit > 0);
//! # Ok(())
//! # }
//! ```

mod absdom;
mod analysis;
mod refdom;
mod summary;

pub use absdom::{MayCache, MustCache, PersCache};
pub use analysis::{AccessClass, CacheAnalysis, CacheState, ClassStats, Classification};
pub use summary::{LocalUarchMemo, UarchMemo, UarchSummaryStats};
