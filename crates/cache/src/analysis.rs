//! The cache-analysis fixpoint and hit/miss classification.

use std::collections::HashMap;

use stamp_ai::{solve, CtxId, Domain, Icfg, NodeId, Transfer};
use stamp_cfg::Cfg;
use stamp_hw::{CacheConfig, HwConfig};
use stamp_isa::MemWidth;
use stamp_value::{SInt, ValueAnalysis};

/// Classification of one memory reference, following aiT's terminology.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Classification {
    /// Always hit: the line is in the must cache in every execution.
    AlwaysHit,
    /// Always miss: the line is absent from the may cache.
    AlwaysMiss,
    /// Persistent: may miss once, afterwards always hits.
    Persistent,
    /// Not classified: anything can happen; treated as a miss.
    NotClassified,
}

/// The joint abstract state of the instruction and data caches.
#[derive(Clone, Debug, PartialEq)]
pub struct CacheState {
    pub(crate) imust: Option<crate::MustCache>,
    pub(crate) imay: Option<crate::MayCache>,
    pub(crate) ipers: Option<crate::PersCache>,
    pub(crate) dmust: Option<crate::MustCache>,
    pub(crate) dmay: Option<crate::MayCache>,
    pub(crate) dpers: Option<crate::PersCache>,
}

impl CacheState {
    pub(crate) fn new(icache: Option<CacheConfig>, dcache: Option<CacheConfig>) -> CacheState {
        CacheState {
            imust: icache.map(crate::MustCache::new),
            imay: icache.map(crate::MayCache::new),
            ipers: icache.map(crate::PersCache::new),
            dmust: dcache.map(crate::MustCache::new),
            dmay: dcache.map(crate::MayCache::new),
            dpers: dcache.map(crate::PersCache::new),
        }
    }
}

impl Domain for CacheState {
    fn join_from(&mut self, other: &CacheState) -> bool {
        let mut ch = false;
        macro_rules! j {
            ($f:ident) => {
                if let (Some(a), Some(b)) = (self.$f.as_mut(), other.$f.as_ref()) {
                    ch |= a.join_from(b);
                }
            };
        }
        j!(imust);
        j!(imay);
        j!(ipers);
        j!(dmust);
        j!(dmay);
        j!(dpers);
        ch
    }

    fn le(&self, other: &CacheState) -> bool {
        macro_rules! l {
            ($f:ident) => {
                match (self.$f.as_ref(), other.$f.as_ref()) {
                    (Some(a), Some(b)) => a.le(b),
                    _ => true,
                }
            };
        }
        l!(imust) && l!(imay) && l!(ipers) && l!(dmust) && l!(dmay) && l!(dpers)
    }
}

/// One classified reference: the instruction fetch and, for loads, the
/// data access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessClass {
    /// Classification of the instruction fetch.
    pub fetch: Classification,
    /// Classification of the data access, for loads.
    pub data: Option<Classification>,
}

/// Aggregate classification counts (experiment E5).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClassStats {
    /// Always-hit references.
    pub hit: usize,
    /// Always-miss references.
    pub miss: usize,
    /// Persistent references.
    pub persistent: usize,
    /// Unclassified references.
    pub unclassified: usize,
}

impl ClassStats {
    fn add(&mut self, c: Classification) {
        match c {
            Classification::AlwaysHit => self.hit += 1,
            Classification::AlwaysMiss => self.miss += 1,
            Classification::Persistent => self.persistent += 1,
            Classification::NotClassified => self.unclassified += 1,
        }
    }

    /// Total classified references.
    pub fn total(&self) -> usize {
        self.hit + self.miss + self.persistent + self.unclassified
    }
}

/// Results of the cache analysis: per-(instruction, context)
/// classifications for fetches and data accesses.
pub struct CacheAnalysis {
    pub(crate) classes: HashMap<(u32, CtxId), AccessClass>,
    pub(crate) icache: Option<CacheConfig>,
    pub(crate) dcache: Option<CacheConfig>,
    /// Distinct I-cache lines behind persistent fetches: each can miss
    /// at most once over the whole task.
    pub(crate) ps_fetch_lines: std::collections::BTreeSet<u32>,
    /// Distinct D-cache lines behind persistent loads.
    pub(crate) ps_data_lines: std::collections::BTreeSet<u32>,
    /// Solver node evaluations (scaling experiment).
    pub evaluations: u64,
}

/// Maximum number of candidate lines enumerated for a data access before
/// falling back to the sound clobber treatment.
const MAX_LINES: usize = 64;

/// Precomputed effect of one data access on the D-cache domains.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum DataAccess {
    /// Bounded candidate line set (possibly a single line).
    Lines(Vec<u32>),
    /// Too many candidates: clobber the given sets (`None` = all).
    Clobber(Option<Vec<u32>>),
}

pub(crate) struct CacheTransfer<'a> {
    pub(crate) cfg: &'a Cfg,
    pub(crate) icache: Option<CacheConfig>,
    pub(crate) dcache: Option<CacheConfig>,
    /// Supergraph edges the value analysis proved infeasible: the cache
    /// analysis must not propagate along them, both for precision and so
    /// that every visited node has value-analysis access information.
    pub(crate) infeasible: std::collections::HashSet<stamp_ai::IEdgeId>,
    /// Candidate-line information per load instance, precomputed once so
    /// neither the fixpoint nor the classification replay re-enumerates
    /// value-analysis address sets.
    pub(crate) data: HashMap<(u32, CtxId), DataAccess>,
}

/// The candidate line addresses of a data access, or `None` when too
/// many to enumerate.
pub(crate) fn lines_of(cfg: CacheConfig, addrs: &SInt, width: MemWidth) -> Option<Vec<u32>> {
    if addrs.count() > 4 * MAX_LINES as u64 {
        return None;
    }
    let mut lines: Vec<u32> = Vec::new();
    for a in addrs.iter() {
        for l in cfg.lines_touched(a, width.bytes()) {
            if !lines.contains(&l) {
                lines.push(l);
            }
        }
        if lines.len() > MAX_LINES {
            return None;
        }
    }
    Some(lines)
}

/// Precomputes the D-cache effect of every load instance in the
/// supergraph, so the fixpoint and the classification replay both read
/// the same table instead of re-enumerating address sets per visit.
pub(crate) fn data_accesses(
    dcache: Option<CacheConfig>,
    cfg: &Cfg,
    icfg: &Icfg,
    va: &ValueAnalysis,
) -> HashMap<(u32, CtxId), DataAccess> {
    let mut data = HashMap::new();
    let Some(dc) = dcache else { return data };
    for nd in icfg.nodes() {
        for &(addr, insn) in &cfg.block(nd.block).insns {
            if !insn.is_load() {
                continue;
            }
            let info = va.access(addr, nd.ctx);
            let da = match info.and_then(|i| lines_of(dc, &i.addrs, i.width)) {
                Some(lines) => DataAccess::Lines(lines),
                None => DataAccess::Clobber(info.and_then(|i| sets_of(dc, &i.addrs))),
            };
            data.insert((addr, nd.ctx), da);
        }
    }
    data
}

/// The cache sets an unenumerable access might touch, if its range at
/// least bounds the set index; `None` means all sets.
pub(crate) fn sets_of(cfg: CacheConfig, addrs: &SInt) -> Option<Vec<u32>> {
    let span = addrs.hi() as u64 - addrs.lo() as u64;
    if span >= (cfg.sets() * cfg.line_bytes()) as u64 {
        return None;
    }
    let mut sets: Vec<u32> = Vec::new();
    let mut a = cfg.line_addr(addrs.lo());
    loop {
        let s = cfg.set_index(a);
        if !sets.contains(&s) {
            sets.push(s);
        }
        if a >= cfg.line_addr(addrs.hi()) {
            break;
        }
        a += cfg.line_bytes();
    }
    Some(sets)
}

impl CacheTransfer<'_> {
    fn apply_block(&self, icfg: &Icfg, node: NodeId, state: &mut CacheState) {
        let n = icfg.node(node);
        let block = self.cfg.block(n.block);
        let mut prev_line = None;
        for &(addr, insn) in &block.insns {
            // Instruction fetch. A fetch from the line just fetched is an
            // exact no-op in all three i-domains (the line is MRU with an
            // empty conflict record), so consecutive same-line fetches —
            // the common case with multiple instructions per line — are
            // skipped. Data accesses never touch the i-domains, so the
            // skip is valid across intervening loads.
            let line = self.icache.map(|ic| ic.line_addr(addr));
            if line != prev_line || line.is_none() {
                prev_line = line;
                if let Some(m) = state.imust.as_mut() {
                    m.access(addr);
                }
                if let Some(m) = state.imay.as_mut() {
                    m.access(addr);
                }
                if let Some(m) = state.ipers.as_mut() {
                    m.access(addr);
                }
            }
            // Data access: loads allocate; stores are write-around and
            // do not touch the cache.
            if insn.is_load() {
                if self.dcache.is_none() {
                    continue;
                }
                match self.data.get(&(addr, n.ctx)).expect("load effect precomputed") {
                    DataAccess::Lines(lines) => {
                        if let Some(m) = state.dmust.as_mut() {
                            m.access_any(lines);
                        }
                        if let Some(m) = state.dmay.as_mut() {
                            m.access_any(lines);
                        }
                        if let Some(m) = state.dpers.as_mut() {
                            m.access_any(lines);
                        }
                    }
                    DataAccess::Clobber(sets) => {
                        if let Some(m) = state.dmust.as_mut() {
                            m.clobber(sets.as_deref());
                        }
                        if let Some(m) = state.dmay.as_mut() {
                            m.clobber(sets.as_deref());
                        }
                        if let Some(m) = state.dpers.as_mut() {
                            m.clobber(sets.as_deref());
                        }
                    }
                }
            }
        }
    }
}

/// Classifies one reference against the current abstract state (shared
/// by the monolithic replay and the per-region summary replay).
pub(crate) fn classify(state: &CacheState, lines: &[u32], data: bool) -> Classification {
    let (must, may, pers) = if data {
        (&state.dmust, &state.dmay, &state.dpers)
    } else {
        (&state.imust, &state.imay, &state.ipers)
    };
    match (must, may, pers) {
        (Some(must), Some(may), Some(pers)) => {
            if !lines.is_empty() && lines.iter().all(|&l| must.definitely_cached(l)) {
                Classification::AlwaysHit
            } else if lines.iter().all(|&l| !may.possibly_cached(l)) {
                Classification::AlwaysMiss
            } else if !lines.is_empty() && lines.iter().all(|&l| pers.persistent(l)) {
                Classification::Persistent
            } else {
                Classification::NotClassified
            }
        }
        // No cache configured: every access is a (flat-latency) miss.
        _ => Classification::AlwaysMiss,
    }
}

impl Transfer for CacheTransfer<'_> {
    type State = CacheState;

    fn boundary(&self) -> CacheState {
        CacheState::new(self.icache, self.dcache)
    }

    fn transfer(&mut self, icfg: &Icfg, node: NodeId, input: &CacheState) -> CacheState {
        let mut s = input.clone();
        self.apply_block(icfg, node, &mut s);
        s
    }

    fn edge<'s>(
        &mut self,
        _icfg: &Icfg,
        edge: &stamp_ai::IEdge,
        state: &'s CacheState,
    ) -> Option<std::borrow::Cow<'s, CacheState>> {
        if self.infeasible.contains(&edge.id) {
            None
        } else {
            Some(std::borrow::Cow::Borrowed(state))
        }
    }
}

impl CacheAnalysis {
    /// Runs the must/may/persistence analyses over the supergraph and
    /// classifies every instruction fetch and data load.
    pub fn run(hw: &HwConfig, cfg: &Cfg, icfg: &Icfg, va: &ValueAnalysis) -> CacheAnalysis {
        CacheAnalysis::run_impl(hw, cfg, icfg, va)
    }

    /// The executable-specification analysis: naive `BTreeMap` domains
    /// driven by the naive reference solver
    /// ([`stamp_ai::solve_reference`]), with per-visit address
    /// enumeration and no same-line fetch skip (see [`crate::refdom`]).
    /// The differential tests and the `uarch` bench section compare
    /// against it.
    pub fn run_reference(
        hw: &HwConfig,
        cfg: &Cfg,
        icfg: &Icfg,
        va: &ValueAnalysis,
    ) -> CacheAnalysis {
        crate::refdom::run_reference(hw, cfg, icfg, va)
    }

    fn run_impl(hw: &HwConfig, cfg: &Cfg, icfg: &Icfg, va: &ValueAnalysis) -> CacheAnalysis {
        let mut transfer = CacheTransfer {
            cfg,
            icache: hw.icache,
            dcache: hw.dcache,
            infeasible: va.infeasible_edges().iter().copied().collect(),
            data: data_accesses(hw.dcache, cfg, icfg, va),
        };
        // Cache domains have finite ascending chains; plain join suffices
        // (widening = join), so the delay value is irrelevant.
        let fixpoint = solve(icfg, &mut transfer, u32::MAX);

        let (classes, ps_fetch_lines, ps_data_lines) =
            replay_classes(&transfer, hw, cfg, icfg, &fixpoint);

        CacheAnalysis {
            classes,
            icache: hw.icache,
            dcache: hw.dcache,
            ps_fetch_lines,
            ps_data_lines,
            evaluations: fixpoint.evaluations,
        }
    }

    /// Distinct I-cache lines behind persistent fetches. Each misses at
    /// most once over the whole task, so pricing persistent fetches as
    /// hits is sound after adding one miss penalty per line.
    pub fn ps_fetch_lines(&self) -> &std::collections::BTreeSet<u32> {
        &self.ps_fetch_lines
    }

    /// Distinct D-cache lines behind persistent loads (see
    /// [`CacheAnalysis::ps_fetch_lines`]).
    pub fn ps_data_lines(&self) -> &std::collections::BTreeSet<u32> {
        &self.ps_data_lines
    }

    /// The classification of the instruction at `addr` in context `ctx`.
    pub fn class(&self, addr: u32, ctx: CtxId) -> Option<AccessClass> {
        self.classes.get(&(addr, ctx)).copied()
    }

    /// All classifications.
    pub fn classes(&self) -> &HashMap<(u32, CtxId), AccessClass> {
        &self.classes
    }

    /// Aggregate fetch statistics over all instruction instances.
    pub fn fetch_stats(&self) -> ClassStats {
        let mut s = ClassStats::default();
        for c in self.classes.values() {
            s.add(c.fetch);
        }
        s
    }

    /// Aggregate data-access statistics over all load instances.
    pub fn data_stats(&self) -> ClassStats {
        let mut s = ClassStats::default();
        for c in self.classes.values() {
            if let Some(d) = c.data {
                s.add(d);
            }
        }
        s
    }

    /// The I-cache geometry, if configured.
    pub fn icache(&self) -> Option<CacheConfig> {
        self.icache
    }

    /// The D-cache geometry, if configured.
    pub fn dcache(&self) -> Option<CacheConfig> {
        self.dcache
    }
}

/// Replays every solved node's abstract state through its block,
/// classifying each fetch and load and collecting the persistent lines
/// (shared by the monolithic run and the summarized run's inline nodes).
type ReplayOut = (
    HashMap<(u32, CtxId), AccessClass>,
    std::collections::BTreeSet<u32>,
    std::collections::BTreeSet<u32>,
);

pub(crate) fn replay_classes(
    transfer: &CacheTransfer<'_>,
    hw: &HwConfig,
    cfg: &Cfg,
    icfg: &Icfg,
    fixpoint: &stamp_ai::Fixpoint<CacheState>,
) -> ReplayOut {
    let mut classes = HashMap::new();
    let mut ps_fetch_lines = std::collections::BTreeSet::new();
    let mut ps_data_lines = std::collections::BTreeSet::new();
    for nd in icfg.nodes() {
        let Some(input) = fixpoint.input(nd.id) else { continue };
        let mut s = input.clone();
        let block = cfg.block(nd.block);
        let mut prev_line = None;
        for &(addr, insn) in &block.insns {
            let fetch = match hw.icache {
                Some(ic) => {
                    let c = classify(&s, &[ic.line_addr(addr)], false);
                    if c == Classification::Persistent {
                        ps_fetch_lines.insert(ic.line_addr(addr));
                    }
                    c
                }
                None => Classification::AlwaysMiss,
            };
            let data = if insn.is_load() {
                Some(match hw.dcache {
                    Some(_) => match transfer.data.get(&(addr, nd.ctx)) {
                        Some(DataAccess::Lines(lines)) => {
                            let c = classify(&s, lines, true);
                            if c == Classification::Persistent {
                                ps_data_lines.extend(lines.iter().copied());
                            }
                            c
                        }
                        _ => Classification::NotClassified,
                    },
                    None => Classification::AlwaysMiss,
                })
            } else {
                None
            };
            classes.insert((addr, nd.ctx), AccessClass { fetch, data });
            // Advance the state through this instruction (same
            // same-line fetch skip as `apply_block`).
            let line = hw.icache.map(|ic| ic.line_addr(addr));
            let fetch_is_noop = line == prev_line && line.is_some();
            prev_line = line;
            apply_one(transfer, &mut s, addr, &insn, nd.ctx, fetch_is_noop);
        }
    }
    (classes, ps_fetch_lines, ps_data_lines)
}

/// Applies one instruction's cache effects (helper for the
/// classification replay).
fn apply_one(
    t: &CacheTransfer<'_>,
    state: &mut CacheState,
    addr: u32,
    insn: &stamp_isa::Insn,
    ctx: CtxId,
    fetch_is_noop: bool,
) {
    if !fetch_is_noop {
        if let Some(m) = state.imust.as_mut() {
            m.access(addr);
        }
        if let Some(m) = state.imay.as_mut() {
            m.access(addr);
        }
        if let Some(m) = state.ipers.as_mut() {
            m.access(addr);
        }
    }
    if insn.is_load() {
        if t.dcache.is_none() {
            return;
        }
        match t.data.get(&(addr, ctx)).expect("load effect precomputed") {
            DataAccess::Lines(lines) => {
                if let Some(m) = state.dmust.as_mut() {
                    m.access_any(lines);
                }
                if let Some(m) = state.dmay.as_mut() {
                    m.access_any(lines);
                }
                if let Some(m) = state.dpers.as_mut() {
                    m.access_any(lines);
                }
            }
            DataAccess::Clobber(sets) => {
                if let Some(m) = state.dmust.as_mut() {
                    m.clobber(sets.as_deref());
                }
                if let Some(m) = state.dmay.as_mut() {
                    m.clobber(sets.as_deref());
                }
                if let Some(m) = state.dpers.as_mut() {
                    m.clobber(sets.as_deref());
                }
            }
        }
    }
}

impl stamp_codec::Codec for Classification {
    fn enc(&self, e: &mut stamp_codec::Enc) {
        e.u8(match self {
            Classification::AlwaysHit => 0,
            Classification::AlwaysMiss => 1,
            Classification::Persistent => 2,
            Classification::NotClassified => 3,
        });
    }
    fn dec(d: &mut stamp_codec::Dec) -> Result<Classification, stamp_codec::CodecError> {
        match d.u8()? {
            0 => Ok(Classification::AlwaysHit),
            1 => Ok(Classification::AlwaysMiss),
            2 => Ok(Classification::Persistent),
            3 => Ok(Classification::NotClassified),
            _ => Err(stamp_codec::CodecError::Invalid("classification")),
        }
    }
}

impl stamp_codec::Codec for AccessClass {
    fn enc(&self, e: &mut stamp_codec::Enc) {
        self.fetch.enc(e);
        self.data.enc(e);
    }
    fn dec(d: &mut stamp_codec::Dec) -> Result<AccessClass, stamp_codec::CodecError> {
        Ok(AccessClass { fetch: Classification::dec(d)?, data: Option::dec(d)? })
    }
}

impl stamp_codec::Codec for CacheAnalysis {
    fn enc(&self, e: &mut stamp_codec::Enc) {
        self.classes.enc(e);
        self.icache.enc(e);
        self.dcache.enc(e);
        self.ps_fetch_lines.enc(e);
        self.ps_data_lines.enc(e);
        e.u64(self.evaluations);
    }
    fn dec(d: &mut stamp_codec::Dec) -> Result<CacheAnalysis, stamp_codec::CodecError> {
        Ok(CacheAnalysis {
            classes: HashMap::dec(d)?,
            icache: Option::dec(d)?,
            dcache: Option::dec(d)?,
            ps_fetch_lines: stamp_codec::Codec::dec(d)?,
            ps_data_lines: stamp_codec::Codec::dec(d)?,
            evaluations: d.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stamp_ai::VivuConfig;
    use stamp_cfg::CfgBuilder;
    use stamp_isa::asm::assemble;
    use stamp_value::ValueOptions;

    fn analyze(src: &str, hw: &HwConfig) -> (Icfg, CacheAnalysis) {
        let p = assemble(src).expect("assembles");
        let cfg = CfgBuilder::new(&p).build().expect("builds");
        let icfg = Icfg::build(&cfg, &VivuConfig::default()).expect("expands");
        let va = ValueAnalysis::run(&p, hw, &cfg, &icfg, &ValueOptions::default());
        let ca = CacheAnalysis::run(hw, &cfg, &icfg, &va);
        (icfg, ca)
    }

    #[test]
    fn loop_fetches_hit_in_steady_state() {
        let hw = HwConfig::default();
        let (icfg, ca) =
            analyze(".text\nmain: li r1, 9\nloop: addi r1, r1, -1\nbnez r1, loop\nhalt\n", &hw);
        // In the iteration ≥ 1 context the loop instructions must-hit.
        let stats = ca.fetch_stats();
        assert!(stats.hit >= 2, "expected steady-state hits, got {stats:?}");
        // The very first fetch is an always-miss (cold cache).
        let entry = icfg.entry();
        let nd = icfg.node(entry);
        let first = ca.class(0, nd.ctx).unwrap();
        assert_eq!(first.fetch, Classification::AlwaysMiss);
    }

    #[test]
    fn repeated_scalar_load_hits() {
        let hw = HwConfig::default();
        let src = "\
            .text
            main: la r1, v
                  lw r2, 0(r1)
                  lw r3, 0(r1)
                  halt
            .data
            v:    .word 7
        ";
        let (icfg, ca) = analyze(src, &hw);
        let nd = icfg.node(icfg.entry());
        // First load misses (cold), second must-hits.
        let l1 = ca.class(8, nd.ctx).unwrap().data.unwrap();
        let l2 = ca.class(12, nd.ctx).unwrap().data.unwrap();
        assert_eq!(l1, Classification::AlwaysMiss);
        assert_eq!(l2, Classification::AlwaysHit);
    }

    #[test]
    fn strided_array_walk_is_bounded_not_hit() {
        let hw = HwConfig::default();
        let src = "\
            .text
            main: li r1, 0
                  la r2, arr
            loop: slli r3, r1, 2
                  add r3, r2, r3
                  lw r4, 0(r3)
                  addi r1, r1, 1
                  slti r5, r1, 8
                  bnez r5, loop
                  halt
            .data
            arr:  .space 32
        ";
        let (_icfg, ca) = analyze(src, &hw);
        let d = ca.data_stats();
        // The walk touches two 16-byte lines; accesses cannot be
        // classified always-hit in the joined contexts, but they are
        // bounded (not a full clobber).
        assert!(d.total() > 0);
        assert_eq!(d.hit, 0);
    }

    #[test]
    fn unknown_pointer_load_clobbers_dcache_soundly() {
        let hw = HwConfig::default(); // 2-way D-cache
        let src = "\
            .text
            main: la r1, p
                  lw r2, 0(r1)      ; exact: p
                  lw r3, 0(r2)      ; unknown target — ages p by 1
                  lw r4, 0(r1)      ; still guaranteed (age 1 < assoc 2)
                  lw r5, 0(r2)      ; p ages again...
                  lw r6, 0(r2)      ; ...and again — beyond associativity
                  lw r7, 0(r1)      ; p may have been evicted: not a hit
                  halt
            .data
            p:    .word 0
        ";
        let (icfg, ca) = analyze(src, &hw);
        let nd = icfg.node(icfg.entry());
        // One unknown access cannot displace a just-loaded line of a
        // 2-way cache: the re-load is provably a hit.
        let third = ca.class(16, nd.ctx).unwrap().data.unwrap();
        assert_eq!(third, Classification::AlwaysHit);
        // But after enough unknown accesses the guarantee is gone.
        let last = ca.class(28, nd.ctx).unwrap().data.unwrap();
        assert_ne!(last, Classification::AlwaysHit);
    }

    #[test]
    fn no_cache_means_always_miss() {
        let hw = HwConfig::no_cache();
        let (_icfg, ca) =
            analyze(".text\nmain: li r1, 2\nloop: addi r1, r1, -1\nbnez r1, loop\nhalt\n", &hw);
        let f = ca.fetch_stats();
        assert_eq!(f.hit, 0);
        assert_eq!(f.persistent, 0);
        assert_eq!(f.unclassified, 0);
        assert!(f.miss > 0);
    }

    #[test]
    fn persistence_detects_loop_resident_line() {
        // A single word re-loaded every iteration: persistent (and in
        // the steady-state context even always-hit).
        let hw = HwConfig::default();
        let src = "\
            .text
            main: li r1, 6
                  la r2, v
            loop: lw r3, 0(r2)
                  addi r1, r1, -1
                  bnez r1, loop
                  halt
            .data
            v:    .word 1
        ";
        let (_icfg, ca) = analyze(src, &hw);
        let d = ca.data_stats();
        assert!(d.hit >= 1, "steady-state load hits: {d:?}");
    }
}
