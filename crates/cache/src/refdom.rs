//! Naive reference implementation of the cache domains.
//!
//! This module is the *executable specification* the optimized domains in
//! [`crate::absdom`] and the per-procedure summaries in [`crate::summary`]
//! are differentially tested against. Everything here favors obvious
//! correctness over speed:
//!
//! * abstract cache sets are plain `BTreeMap`s (no inline arrays, no
//!   copy-on-write sharing),
//! * persistence conflict records are `BTreeSet`s of line addresses,
//! * data-access line sets are re-enumerated from the value analysis on
//!   **every** solver visit (no precomputed table), and
//! * every instruction fetch is applied — the same-line fetch skip of the
//!   optimized transfer is deliberately absent, so the differential tests
//!   also validate that the skip is an exact no-op.
//!
//! The fixpoint is driven by [`stamp_ai::solve_reference`], the naive
//! chaotic-iteration solver. [`CacheAnalysis::run_reference`] produces a
//! full [`CacheAnalysis`] from these domains; the `uarch` bench section
//! uses its wall time as the honest baseline the summarized analysis is
//! measured against.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use stamp_ai::{solve_reference, CtxId, Domain, Icfg, NodeId, Transfer};
use stamp_cfg::Cfg;
use stamp_hw::{CacheConfig, HwConfig};
use stamp_value::ValueAnalysis;

use crate::analysis::{lines_of, sets_of, AccessClass, CacheAnalysis, Classification};

/// Reference must cache: one `line → age upper bound` map per cache set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct RefMust {
    config: CacheConfig,
    sets: Vec<BTreeMap<u32, u8>>,
}

impl RefMust {
    pub(crate) fn new(config: CacheConfig) -> RefMust {
        RefMust { config, sets: vec![BTreeMap::new(); config.sets() as usize] }
    }

    pub(crate) fn definitely_cached(&self, addr: u32) -> bool {
        self.sets[self.config.set_index(addr) as usize].contains_key(&self.config.line_addr(addr))
    }

    pub(crate) fn access(&mut self, addr: u32) {
        let a = self.config.assoc() as u8;
        let line = self.config.line_addr(addr);
        let set = &mut self.sets[self.config.set_index(addr) as usize];
        let z_age = set.get(&line).copied().unwrap_or(a);
        let mut next = BTreeMap::new();
        for (&y, &age) in set.iter() {
            if y != line && age < z_age {
                if age + 1 < a {
                    next.insert(y, age + 1);
                }
            } else {
                next.insert(y, age);
            }
        }
        next.insert(line, 0);
        *set = next;
    }

    pub(crate) fn access_any(&mut self, lines: &[u32]) {
        join_over_lines(self, lines, RefMust::access, RefMust::join_from);
    }

    pub(crate) fn clobber(&mut self, set_indices: Option<&[u32]>) {
        let a = self.config.assoc() as u8;
        for si in ref_sets(self.config.sets(), set_indices) {
            let set = &mut self.sets[si];
            *set = set
                .iter()
                .filter(|&(_, &age)| age + 1 < a)
                .map(|(&l, &age)| (l, age + 1))
                .collect();
        }
    }

    pub(crate) fn join_from(&mut self, other: &RefMust) -> bool {
        let mut changed = false;
        for (s, o) in self.sets.iter_mut().zip(other.sets.iter()) {
            let next: BTreeMap<u32, u8> =
                s.iter().filter_map(|(&l, &age)| o.get(&l).map(|&oa| (l, age.max(oa)))).collect();
            if *s != next {
                changed = true;
                *s = next;
            }
        }
        changed
    }

    fn le(&self, other: &RefMust) -> bool {
        self.sets
            .iter()
            .zip(other.sets.iter())
            .all(|(s, o)| o.iter().all(|(l, oa)| s.get(l).is_some_and(|sa| sa <= oa)))
    }
}

/// Reference may cache set: `Top` means "any line at any age".
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum RefMaySet {
    Map(BTreeMap<u32, u8>),
    Top,
}

/// Reference may cache: one `line → age lower bound` map per cache set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct RefMay {
    config: CacheConfig,
    sets: Vec<RefMaySet>,
}

impl RefMay {
    pub(crate) fn new(config: CacheConfig) -> RefMay {
        RefMay { config, sets: vec![RefMaySet::Map(BTreeMap::new()); config.sets() as usize] }
    }

    pub(crate) fn possibly_cached(&self, addr: u32) -> bool {
        match &self.sets[self.config.set_index(addr) as usize] {
            RefMaySet::Map(m) => m.contains_key(&self.config.line_addr(addr)),
            RefMaySet::Top => true,
        }
    }

    pub(crate) fn access(&mut self, addr: u32) {
        let a = self.config.assoc() as u8;
        let line = self.config.line_addr(addr);
        let RefMaySet::Map(set) = &mut self.sets[self.config.set_index(addr) as usize] else {
            return; // ⊤ stays ⊤ (still sound)
        };
        let z_age = set.get(&line).copied().unwrap_or(a);
        let mut next = BTreeMap::new();
        for (&y, &age) in set.iter() {
            if y != line && age < z_age {
                if age + 1 < a {
                    next.insert(y, age + 1);
                }
            } else {
                next.insert(y, age);
            }
        }
        next.insert(line, 0);
        *set = next;
    }

    pub(crate) fn access_any(&mut self, lines: &[u32]) {
        join_over_lines(self, lines, RefMay::access, RefMay::join_from);
    }

    pub(crate) fn clobber(&mut self, set_indices: Option<&[u32]>) {
        for si in ref_sets(self.config.sets(), set_indices) {
            self.sets[si] = RefMaySet::Top;
        }
    }

    pub(crate) fn join_from(&mut self, other: &RefMay) -> bool {
        let mut changed = false;
        for (s, o) in self.sets.iter_mut().zip(other.sets.iter()) {
            match (&mut *s, o) {
                (RefMaySet::Top, _) => {}
                (RefMaySet::Map(_), RefMaySet::Top) => {
                    *s = RefMaySet::Top;
                    changed = true;
                }
                (RefMaySet::Map(sm), RefMaySet::Map(om)) => {
                    for (&l, &oa) in om.iter() {
                        match sm.get(&l) {
                            Some(&sa) if sa <= oa => {}
                            _ => {
                                sm.insert(l, oa);
                                changed = true;
                            }
                        }
                    }
                }
            }
        }
        changed
    }

    fn le(&self, other: &RefMay) -> bool {
        self.sets.iter().zip(other.sets.iter()).all(|(s, o)| match (s, o) {
            (_, RefMaySet::Top) => true,
            (RefMaySet::Top, RefMaySet::Map(_)) => false,
            (RefMaySet::Map(sm), RefMaySet::Map(om)) => {
                sm.iter().all(|(l, sa)| om.get(l).is_some_and(|oa| oa <= sa))
            }
        })
    }
}

/// Reference conflict record: the distinct other lines possibly accessed
/// since the line's last access, or saturated (`Sat` = may be evicted).
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum RefConflicts {
    Among(BTreeSet<u32>),
    Sat,
}

impl RefConflicts {
    fn none() -> RefConflicts {
        RefConflicts::Among(BTreeSet::new())
    }

    /// Mirrors [`crate::absdom`]'s `Conflicts::add`: a record saturates
    /// the moment it would reach `assoc` distinct conflicting lines.
    fn add(&mut self, line: u32, assoc: u8) {
        if let RefConflicts::Among(set) = self {
            if set.contains(&line) {
                return;
            }
            if set.len() + 1 >= assoc as usize {
                *self = RefConflicts::Sat;
            } else {
                set.insert(line);
            }
        }
    }

    fn union(&mut self, other: &RefConflicts, assoc: u8) {
        match other {
            RefConflicts::Sat => *self = RefConflicts::Sat,
            RefConflicts::Among(lines) => {
                for &l in lines {
                    self.add(l, assoc);
                }
            }
        }
    }

    fn subset_of(&self, other: &RefConflicts) -> bool {
        match (self, other) {
            (_, RefConflicts::Sat) => true,
            (RefConflicts::Sat, RefConflicts::Among(_)) => false,
            (RefConflicts::Among(s), RefConflicts::Among(o)) => s.is_subset(o),
        }
    }
}

/// Reference persistence cache: `line → conflict set` per cache set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct RefPers {
    config: CacheConfig,
    sets: Vec<BTreeMap<u32, RefConflicts>>,
}

impl RefPers {
    pub(crate) fn new(config: CacheConfig) -> RefPers {
        RefPers { config, sets: vec![BTreeMap::new(); config.sets() as usize] }
    }

    pub(crate) fn persistent(&self, addr: u32) -> bool {
        matches!(
            self.sets[self.config.set_index(addr) as usize].get(&self.config.line_addr(addr)),
            Some(RefConflicts::Among(_))
        )
    }

    pub(crate) fn access(&mut self, addr: u32) {
        let a = self.config.assoc() as u8;
        let line = self.config.line_addr(addr);
        let set = &mut self.sets[self.config.set_index(addr) as usize];
        for (&l, c) in set.iter_mut() {
            if l != line {
                c.add(line, a);
            }
        }
        set.insert(line, RefConflicts::none());
    }

    pub(crate) fn access_any(&mut self, lines: &[u32]) {
        join_over_lines(self, lines, RefPers::access, RefPers::join_from);
    }

    pub(crate) fn clobber(&mut self, set_indices: Option<&[u32]>) {
        for si in ref_sets(self.config.sets(), set_indices) {
            for (_, c) in self.sets[si].iter_mut() {
                *c = RefConflicts::Sat;
            }
        }
    }

    pub(crate) fn join_from(&mut self, other: &RefPers) -> bool {
        let a = self.config.assoc() as u8;
        let mut changed = false;
        for (s, o) in self.sets.iter_mut().zip(other.sets.iter()) {
            for (&l, oc) in o.iter() {
                match s.get_mut(&l) {
                    Some(sc) => {
                        if !oc.subset_of(sc) {
                            sc.union(oc, a);
                            changed = true;
                        }
                    }
                    None => {
                        s.insert(l, oc.clone());
                        changed = true;
                    }
                }
            }
        }
        changed
    }

    fn le(&self, other: &RefPers) -> bool {
        self.sets
            .iter()
            .zip(other.sets.iter())
            .all(|(s, o)| s.iter().all(|(l, sc)| o.get(l).is_some_and(|oc| sc.subset_of(oc))))
    }
}

/// The set indices an operation touches (`None` = all sets).
fn ref_sets(sets: u32, set_indices: Option<&[u32]>) -> Vec<usize> {
    match set_indices {
        Some(idx) => idx.iter().map(|&si| si as usize).collect(),
        None => (0..sets as usize).collect(),
    }
}

/// Access with several candidate lines: join of the per-line outcomes
/// (the literal definition the optimized `access_any` implements).
fn join_over_lines<D: Clone>(
    dom: &mut D,
    lines: &[u32],
    mut access: impl FnMut(&mut D, u32),
    mut join: impl FnMut(&mut D, &D) -> bool,
) {
    match lines {
        [] => {}
        [one] => access(dom, *one),
        _ => {
            let mut acc: Option<D> = None;
            for &l in lines {
                let mut c = dom.clone();
                access(&mut c, l);
                acc = Some(match acc {
                    None => c,
                    Some(mut p) => {
                        join(&mut p, &c);
                        p
                    }
                });
            }
            *dom = acc.expect("non-empty lines");
        }
    }
}

/// The joint reference state of the instruction and data caches.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct RefState {
    imust: Option<RefMust>,
    imay: Option<RefMay>,
    ipers: Option<RefPers>,
    dmust: Option<RefMust>,
    dmay: Option<RefMay>,
    dpers: Option<RefPers>,
}

impl RefState {
    fn new(icache: Option<CacheConfig>, dcache: Option<CacheConfig>) -> RefState {
        RefState {
            imust: icache.map(RefMust::new),
            imay: icache.map(RefMay::new),
            ipers: icache.map(RefPers::new),
            dmust: dcache.map(RefMust::new),
            dmay: dcache.map(RefMay::new),
            dpers: dcache.map(RefPers::new),
        }
    }
}

impl Domain for RefState {
    fn join_from(&mut self, other: &RefState) -> bool {
        let mut ch = false;
        macro_rules! j {
            ($f:ident) => {
                if let (Some(a), Some(b)) = (self.$f.as_mut(), other.$f.as_ref()) {
                    ch |= a.join_from(b);
                }
            };
        }
        j!(imust);
        j!(imay);
        j!(ipers);
        j!(dmust);
        j!(dmay);
        j!(dpers);
        ch
    }

    fn le(&self, other: &RefState) -> bool {
        macro_rules! l {
            ($f:ident) => {
                match (self.$f.as_ref(), other.$f.as_ref()) {
                    (Some(a), Some(b)) => a.le(b),
                    _ => true,
                }
            };
        }
        l!(imust) && l!(imay) && l!(ipers) && l!(dmust) && l!(dmay) && l!(dpers)
    }
}

/// Classifies one reference against the reference state.
fn ref_classify(state: &RefState, lines: &[u32], data: bool) -> Classification {
    let (must, may, pers) = if data {
        (&state.dmust, &state.dmay, &state.dpers)
    } else {
        (&state.imust, &state.imay, &state.ipers)
    };
    match (must, may, pers) {
        (Some(must), Some(may), Some(pers)) => {
            if !lines.is_empty() && lines.iter().all(|&l| must.definitely_cached(l)) {
                Classification::AlwaysHit
            } else if lines.iter().all(|&l| !may.possibly_cached(l)) {
                Classification::AlwaysMiss
            } else if !lines.is_empty() && lines.iter().all(|&l| pers.persistent(l)) {
                Classification::Persistent
            } else {
                Classification::NotClassified
            }
        }
        _ => Classification::AlwaysMiss,
    }
}

struct RefTransfer<'a> {
    cfg: &'a Cfg,
    va: &'a ValueAnalysis,
    icache: Option<CacheConfig>,
    dcache: Option<CacheConfig>,
    infeasible: std::collections::HashSet<stamp_ai::IEdgeId>,
}

/// The candidate lines of one load, re-enumerated from the value
/// analysis (`None` = clobber of the given sets, `None` sets = all).
enum RefAccess {
    Lines(Vec<u32>),
    Clobber(Option<Vec<u32>>),
}

impl RefTransfer<'_> {
    fn data_access(&self, dc: CacheConfig, addr: u32, ctx: CtxId) -> RefAccess {
        let info = self.va.access(addr, ctx);
        match info.and_then(|i| lines_of(dc, &i.addrs, i.width)) {
            Some(lines) => RefAccess::Lines(lines),
            None => RefAccess::Clobber(info.and_then(|i| sets_of(dc, &i.addrs))),
        }
    }

    /// Applies one instruction. Unlike the optimized transfer, every
    /// fetch is applied — there is no same-line skip.
    fn apply_insn(&self, state: &mut RefState, addr: u32, insn: &stamp_isa::Insn, ctx: CtxId) {
        if let Some(m) = state.imust.as_mut() {
            m.access(addr);
        }
        if let Some(m) = state.imay.as_mut() {
            m.access(addr);
        }
        if let Some(m) = state.ipers.as_mut() {
            m.access(addr);
        }
        if insn.is_load() {
            let Some(dc) = self.dcache else { return };
            match self.data_access(dc, addr, ctx) {
                RefAccess::Lines(lines) => {
                    if let Some(m) = state.dmust.as_mut() {
                        m.access_any(&lines);
                    }
                    if let Some(m) = state.dmay.as_mut() {
                        m.access_any(&lines);
                    }
                    if let Some(m) = state.dpers.as_mut() {
                        m.access_any(&lines);
                    }
                }
                RefAccess::Clobber(sets) => {
                    if let Some(m) = state.dmust.as_mut() {
                        m.clobber(sets.as_deref());
                    }
                    if let Some(m) = state.dmay.as_mut() {
                        m.clobber(sets.as_deref());
                    }
                    if let Some(m) = state.dpers.as_mut() {
                        m.clobber(sets.as_deref());
                    }
                }
            }
        }
    }
}

impl Transfer for RefTransfer<'_> {
    type State = RefState;

    fn boundary(&self) -> RefState {
        RefState::new(self.icache, self.dcache)
    }

    fn transfer(&mut self, icfg: &Icfg, node: NodeId, input: &RefState) -> RefState {
        let n = icfg.node(node);
        let mut s = input.clone();
        for &(addr, insn) in &self.cfg.block(n.block).insns {
            self.apply_insn(&mut s, addr, &insn, n.ctx);
        }
        s
    }

    fn edge<'s>(
        &mut self,
        _icfg: &Icfg,
        edge: &stamp_ai::IEdge,
        state: &'s RefState,
    ) -> Option<std::borrow::Cow<'s, RefState>> {
        if self.infeasible.contains(&edge.id) {
            None
        } else {
            Some(std::borrow::Cow::Borrowed(state))
        }
    }
}

/// Runs the reference cache analysis: naive domains, naive solver,
/// per-visit address enumeration. See the module docs.
pub(crate) fn run_reference(
    hw: &HwConfig,
    cfg: &Cfg,
    icfg: &Icfg,
    va: &ValueAnalysis,
) -> CacheAnalysis {
    let mut transfer = RefTransfer {
        cfg,
        va,
        icache: hw.icache,
        dcache: hw.dcache,
        infeasible: va.infeasible_edges().iter().copied().collect(),
    };
    let fixpoint = solve_reference(icfg, &mut transfer, u32::MAX);

    let mut classes = HashMap::new();
    let mut ps_fetch_lines = BTreeSet::new();
    let mut ps_data_lines = BTreeSet::new();
    for nd in icfg.nodes() {
        let Some(input) = fixpoint.input(nd.id) else { continue };
        let mut s = input.clone();
        for &(addr, insn) in &cfg.block(nd.block).insns {
            let fetch = match hw.icache {
                Some(ic) => {
                    let c = ref_classify(&s, &[ic.line_addr(addr)], false);
                    if c == Classification::Persistent {
                        ps_fetch_lines.insert(ic.line_addr(addr));
                    }
                    c
                }
                None => Classification::AlwaysMiss,
            };
            let data = if insn.is_load() {
                Some(match hw.dcache {
                    Some(dc) => match transfer.data_access(dc, addr, nd.ctx) {
                        RefAccess::Lines(lines) => {
                            let c = ref_classify(&s, &lines, true);
                            if c == Classification::Persistent {
                                ps_data_lines.extend(lines.iter().copied());
                            }
                            c
                        }
                        RefAccess::Clobber(_) => Classification::NotClassified,
                    },
                    None => Classification::AlwaysMiss,
                })
            } else {
                None
            };
            classes.insert((addr, nd.ctx), AccessClass { fetch, data });
            transfer.apply_insn(&mut s, addr, &insn, nd.ctx);
        }
    }

    CacheAnalysis {
        classes,
        icache: hw.icache,
        dcache: hw.dcache,
        ps_fetch_lines,
        ps_data_lines,
        evaluations: fixpoint.evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use stamp_ai::VivuConfig;
    use stamp_cfg::CfgBuilder;
    use stamp_isa::asm::assemble;
    use stamp_value::ValueOptions;

    /// The reference analysis and the optimized analysis must agree on
    /// every classification and on the persistent line sets.
    fn check(src: &str, hw: &HwConfig) {
        let p = assemble(src).expect("assembles");
        let cfg = CfgBuilder::new(&p).build().expect("builds");
        let icfg = Icfg::build(&cfg, &VivuConfig::default()).expect("expands");
        let va = ValueAnalysis::run(&p, hw, &cfg, &icfg, &ValueOptions::default());
        let fast = CacheAnalysis::run(hw, &cfg, &icfg, &va);
        let reference = CacheAnalysis::run_reference(hw, &cfg, &icfg, &va);
        let mut keys: Vec<_> = fast.classes().keys().copied().collect();
        keys.sort_unstable();
        let mut ref_keys: Vec<_> = reference.classes().keys().copied().collect();
        ref_keys.sort_unstable();
        assert_eq!(keys, ref_keys);
        for k in &keys {
            assert_eq!(fast.classes()[k], reference.classes()[k], "at {k:?}");
        }
        assert_eq!(fast.ps_fetch_lines(), reference.ps_fetch_lines());
        assert_eq!(fast.ps_data_lines(), reference.ps_data_lines());
    }

    #[test]
    fn reference_matches_optimized_on_loops_and_loads() {
        let src = "\
            .text
            main: li r1, 6
                  la r2, v
            loop: lw r3, 0(r2)
                  addi r1, r1, -1
                  bnez r1, loop
                  halt
            .data
            v:    .word 1
        ";
        check(src, &HwConfig::default());
        check(src, &HwConfig::no_cache());
    }

    #[test]
    fn reference_matches_optimized_on_calls_and_clobbers() {
        let src = "\
            .text
            main: la r1, p
                  call f
                  call f
                  halt
            f:    lw r2, 0(r1)
                  lw r3, 0(r2)
                  ret
            .data
            p:    .word 0
        ";
        check(src, &HwConfig::default());
        let small = HwConfig {
            icache: Some(stamp_hw::CacheConfig::new(2, 2, 16)),
            dcache: Some(stamp_hw::CacheConfig::new(2, 2, 16)),
            ..HwConfig::default()
        };
        check(src, &small);
    }

    // ---- boundary proptests: optimized domains vs reference domains ----

    /// One operation applied in lockstep to an optimized domain and its
    /// reference twin.
    #[derive(Clone, Debug)]
    enum Op {
        Access(u32),
        AccessAny(Vec<u32>),
        ClobberAll,
        ClobberSet(u32),
        /// Join the secondary state pair into the primary one.
        Join,
        /// Reset the secondary state pair to the primary one.
        Fork,
    }

    /// A tiny geometry keeps every access at the `age + 1 == assoc`
    /// eviction boundary and saturates persistence records quickly.
    fn geometry() -> CacheConfig {
        stamp_hw::CacheConfig::new(2, 2, 16)
    }

    fn universe(cfg: CacheConfig) -> Vec<u32> {
        (0..8u32).map(|i| i * cfg.line_bytes()).collect()
    }

    fn op_strategy(cfg: CacheConfig) -> impl Strategy<Value = Op> {
        let lb = cfg.line_bytes();
        prop_oneof![
            4 => (0..8u32).prop_map(move |i| Op::Access(i * lb)),
            2 => proptest::collection::vec((0..8u32).prop_map(move |i| i * lb), 1..4)
                .prop_map(Op::AccessAny),
            1 => Just(Op::ClobberAll),
            1 => (0..cfg.sets()).prop_map(Op::ClobberSet),
            1 => Just(Op::Join),
            1 => Just(Op::Fork),
        ]
    }

    /// Drives an optimized domain and its reference twin through the same
    /// operation sequence, comparing the classifying query after each
    /// step.
    fn lockstep<F, R>(
        ops: &[Op],
        fast0: F,
        ref0: R,
        fast_step: impl Fn(&mut F, &Op, &F) -> Option<F>,
        ref_step: impl Fn(&mut R, &Op, &R) -> Option<R>,
        agree: impl Fn(&F, &R, u32) -> bool,
    ) where
        F: Clone,
        R: Clone,
    {
        let cfg = geometry();
        let (mut f, mut fb) = (fast0.clone(), fast0);
        let (mut r, mut rb) = (ref0.clone(), ref0);
        for op in ops {
            if let Some(nf) = fast_step(&mut f, op, &fb) {
                fb = nf;
            }
            if let Some(nr) = ref_step(&mut r, op, &rb) {
                rb = nr;
            }
            for &a in &universe(cfg) {
                assert!(agree(&f, &r, a), "disagree at {a:#x} after {op:?}");
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Must-cache eviction at `age + 1 == assoc` matches the naive
        /// domain through arbitrary access/clobber/join sequences.
        #[test]
        fn must_matches_reference(ops in proptest::collection::vec(op_strategy(geometry()), 1..40)) {
            let cfg = geometry();
            let step_fast = |d: &mut crate::MustCache, op: &Op, b: &crate::MustCache| -> Option<crate::MustCache> {
                match op {
                    Op::Access(a) => d.access(*a),
                    Op::AccessAny(ls) => d.access_any(ls),
                    Op::ClobberAll => d.clobber(None),
                    Op::ClobberSet(s) => d.clobber(Some(&[*s])),
                    Op::Join => { d.join_from(b); }
                    Op::Fork => return Some(d.clone()),
                }
                None
            };
            let step_ref = |d: &mut RefMust, op: &Op, b: &RefMust| -> Option<RefMust> {
                match op {
                    Op::Access(a) => d.access(*a),
                    Op::AccessAny(ls) => d.access_any(ls),
                    Op::ClobberAll => d.clobber(None),
                    Op::ClobberSet(s) => d.clobber(Some(&[*s])),
                    Op::Join => { d.join_from(b); }
                    Op::Fork => return Some(d.clone()),
                }
                None
            };
            lockstep(
                &ops,
                crate::MustCache::new(cfg),
                RefMust::new(cfg),
                step_fast,
                step_ref,
                |f, r, a| f.definitely_cached(a) == r.definitely_cached(a),
            );
        }

        /// May-cache eviction and ⊤ propagation match the naive domain.
        #[test]
        fn may_matches_reference(ops in proptest::collection::vec(op_strategy(geometry()), 1..40)) {
            let cfg = geometry();
            let step_fast = |d: &mut crate::MayCache, op: &Op, b: &crate::MayCache| -> Option<crate::MayCache> {
                match op {
                    Op::Access(a) => d.access(*a),
                    Op::AccessAny(ls) => d.access_any(ls),
                    Op::ClobberAll => d.clobber(None),
                    Op::ClobberSet(s) => d.clobber(Some(&[*s])),
                    Op::Join => { d.join_from(b); }
                    Op::Fork => return Some(d.clone()),
                }
                None
            };
            let step_ref = |d: &mut RefMay, op: &Op, b: &RefMay| -> Option<RefMay> {
                match op {
                    Op::Access(a) => d.access(*a),
                    Op::AccessAny(ls) => d.access_any(ls),
                    Op::ClobberAll => d.clobber(None),
                    Op::ClobberSet(s) => d.clobber(Some(&[*s])),
                    Op::Join => { d.join_from(b); }
                    Op::Fork => return Some(d.clone()),
                }
                None
            };
            lockstep(
                &ops,
                crate::MayCache::new(cfg),
                RefMay::new(cfg),
                step_fast,
                step_ref,
                |f, r, a| f.possibly_cached(a) == r.possibly_cached(a),
            );
        }

        /// Persistence conflict-set saturation (`Conflicts::Sat`) matches
        /// the naive BTreeSet record.
        #[test]
        fn pers_matches_reference(ops in proptest::collection::vec(op_strategy(geometry()), 1..40)) {
            let cfg = geometry();
            let step_fast = |d: &mut crate::PersCache, op: &Op, b: &crate::PersCache| -> Option<crate::PersCache> {
                match op {
                    Op::Access(a) => d.access(*a),
                    Op::AccessAny(ls) => d.access_any(ls),
                    Op::ClobberAll => d.clobber(None),
                    Op::ClobberSet(s) => d.clobber(Some(&[*s])),
                    Op::Join => { d.join_from(b); }
                    Op::Fork => return Some(d.clone()),
                }
                None
            };
            let step_ref = |d: &mut RefPers, op: &Op, b: &RefPers| -> Option<RefPers> {
                match op {
                    Op::Access(a) => d.access(*a),
                    Op::AccessAny(ls) => d.access_any(ls),
                    Op::ClobberAll => d.clobber(None),
                    Op::ClobberSet(s) => d.clobber(Some(&[*s])),
                    Op::Join => { d.join_from(b); }
                    Op::Fork => return Some(d.clone()),
                }
                None
            };
            lockstep(
                &ops,
                crate::PersCache::new(cfg),
                RefPers::new(cfg),
                step_fast,
                step_ref,
                |f, r, a| f.persistent(a) == r.persistent(a),
            );
        }
    }
}
