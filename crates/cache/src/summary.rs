//! Per-procedure cache summaries.
//!
//! One call-instance region (carved by [`stamp_ai::carve_regions`]) is
//! analyzed *once per entry-state class* instead of once per context
//! clone: the region's instruction stream plus the projection of the
//! entry cache state onto the lines the region touches determine the
//! fixpoint inside the region exactly, so the result — per-access
//! classifications, persistent lines, and the exit transformation of
//! the caller's cache state — is memoized under a key built from those
//! bytes and replayed on every later instance.
//!
//! The exit transformation is exact, not an approximation. Lines the
//! region never touches evolve independently of each other: in the
//! must/may domains an untouched line's aging depends only on its own
//! age and the accessed lines' ages, and in the persistence domain its
//! conflict record gains exactly the distinct accessed lines. The local
//! pass therefore seeds each touched cache set with `assoc` *ghost
//! lines* — addresses no region line can collide with — at entry ages
//! `0..assoc`, and reads off their exit ages as a transformer table
//! `entry age → exit age | evicted` valid for any caller line.
//!
//! Regions whose loads clobber (unenumerable address sets) are not
//! summarized; their nodes are solved inline. If no region survives, or
//! the composed solve declines (e.g. a region entered twice), the
//! caller falls back to the monolithic fixpoint — fallback is always
//! available and always sound.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::rc::Rc;

use stamp_ai::{carve_regions, solve_with_regions, Domain, Icfg, RegionOutcome, RegionSpec};
use stamp_cfg::Cfg;
use stamp_codec::{Codec, CodecError, Dec, Enc};
use stamp_hw::{CacheConfig, HwConfig};
use stamp_value::ValueAnalysis;

use crate::absdom::{Conflicts, PersSet, SetState, INLINE_LINES};
use crate::analysis::{
    classify, data_accesses, replay_classes, CacheState, CacheTransfer, DataAccess,
};
use crate::{AccessClass, CacheAnalysis, Classification, MayCache, MustCache, PersCache};

/// Bumped whenever the summary key or payload layout changes.
const SUMMARY_VERSION: u8 = 1;

/// Bytes-level memo for encoded summaries, shared by the cache and
/// pipeline summary passes. The local tier lives here; `stamp-core`
/// layers the artifact broker and the durable store on top.
pub trait UarchMemo {
    /// Returns the summary bytes for `key`, invoking `compute` on miss.
    /// Implementations must return exactly the bytes `compute` produced
    /// for this key (possibly in an earlier run).
    fn recall(&mut self, key: &[u8], compute: &mut dyn FnMut() -> Vec<u8>) -> Rc<Vec<u8>>;
}

/// In-memory memo: shares summaries between the call instances of one
/// analysis run.
#[derive(Default)]
pub struct LocalUarchMemo {
    map: HashMap<Vec<u8>, Rc<Vec<u8>>>,
}

impl UarchMemo for LocalUarchMemo {
    fn recall(&mut self, key: &[u8], compute: &mut dyn FnMut() -> Vec<u8>) -> Rc<Vec<u8>> {
        if let Some(v) = self.map.get(key) {
            return Rc::clone(v);
        }
        let v = Rc::new(compute());
        self.map.insert(key.to_vec(), Rc::clone(&v));
        v
    }
}

/// Reuse counters of one summarized run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UarchSummaryStats {
    /// Regions carved and summarizable.
    pub regions: usize,
    /// Summaries computed fresh this run.
    pub computed: usize,
    /// Region evaluations answered from the memo.
    pub reused: usize,
}

/// One reference inside a region: the fetch address and, for loads with
/// a configured D-cache, the candidate line set.
#[derive(Clone, Debug)]
struct InsnInfo {
    addr: u32,
    is_load: bool,
    lines: Option<Vec<u32>>,
}

/// The canonical, instance-independent description of one region.
#[derive(Clone, Debug)]
struct RegionInfo {
    /// Per region node (ascending local index): the block's references.
    nodes: Vec<Vec<InsnInfo>>,
    /// Feasible internal edges as local index pairs (`from < to`).
    edges: Vec<(u32, u32)>,
    /// Local index of each exit edge's source node.
    exit_froms: Vec<u32>,
    /// Touched I-cache sets: `(set index, sorted distinct lines)`.
    ifoot: Vec<(u32, Vec<u32>)>,
    /// Touched D-cache sets.
    dfoot: Vec<(u32, Vec<u32>)>,
    /// Ghost lines per footprint entry (`assoc` each), aligned with
    /// `ifoot` / `dfoot`.
    ighosts: Vec<Vec<u32>>,
    dghosts: Vec<Vec<u32>>,
    /// Canonical structure + configuration bytes: the memo key prefix.
    bytes: Vec<u8>,
}

/// The exit transformation of one touched cache set.
#[derive(Clone, Debug)]
struct SetEffect {
    /// Footprint lines present in the must set at exit, with ages.
    must_lines: Vec<(u32, u8)>,
    /// Non-footprint transformer: entry age → exit age (`None` =
    /// evicted), read off the ghost lines.
    must_table: Vec<Option<u8>>,
    /// The may set was ⊤ at entry (and therefore still is at exit).
    may_top: bool,
    may_lines: Vec<(u32, u8)>,
    may_table: Vec<Option<u8>>,
    /// Footprint lines' conflict records at exit.
    pers_lines: Vec<(u32, Conflicts)>,
    /// Conflicts every non-footprint line gained (the ghost's record).
    pers_add: Conflicts,
}

/// The exit transformation of the whole cache state, aligned with
/// `ifoot` / `dfoot`.
#[derive(Clone, Debug)]
struct ExitEffect {
    isets: Vec<SetEffect>,
    dsets: Vec<SetEffect>,
}

/// A memoized region summary: everything the composed solve and the
/// classification replay need, independent of the concrete instance.
#[derive(Clone, Debug)]
struct CacheSummary {
    /// Node evaluations the monolithic solver would perform inside.
    evaluations: u64,
    /// Locally reachable nodes.
    reached: Vec<bool>,
    /// Per node, per instruction: the classification (empty when
    /// unreached).
    classes: Vec<Vec<AccessClass>>,
    /// Persistent I-cache lines contributed by reached region nodes.
    ps_fetch: Vec<u32>,
    /// Persistent D-cache lines contributed by reached region nodes.
    ps_data: Vec<u32>,
    /// Exit transformation per exit edge (`None` = exit unreached).
    exits: Vec<Option<ExitEffect>>,
}

impl Codec for Conflicts {
    fn enc(&self, e: &mut Enc) {
        match self {
            Conflicts::Sat => e.u8(u8::MAX),
            Conflicts::Among { len, lines } => {
                e.u8(*len);
                for &l in &lines[..*len as usize] {
                    e.u32(l);
                }
            }
        }
    }
    fn dec(d: &mut Dec) -> Result<Conflicts, CodecError> {
        match d.u8()? {
            u8::MAX => Ok(Conflicts::Sat),
            len if (len as usize) < INLINE_LINES => {
                let mut lines = [0u32; INLINE_LINES];
                for slot in &mut lines[..len as usize] {
                    *slot = d.u32()?;
                }
                Ok(Conflicts::Among { len, lines })
            }
            _ => Err(CodecError::Invalid("conflict record")),
        }
    }
}

impl Codec for SetEffect {
    fn enc(&self, e: &mut Enc) {
        self.must_lines.enc(e);
        self.must_table.enc(e);
        self.may_top.enc(e);
        self.may_lines.enc(e);
        self.may_table.enc(e);
        self.pers_lines.enc(e);
        self.pers_add.enc(e);
    }
    fn dec(d: &mut Dec) -> Result<SetEffect, CodecError> {
        Ok(SetEffect {
            must_lines: Codec::dec(d)?,
            must_table: Codec::dec(d)?,
            may_top: Codec::dec(d)?,
            may_lines: Codec::dec(d)?,
            may_table: Codec::dec(d)?,
            pers_lines: Codec::dec(d)?,
            pers_add: Codec::dec(d)?,
        })
    }
}

impl Codec for ExitEffect {
    fn enc(&self, e: &mut Enc) {
        self.isets.enc(e);
        self.dsets.enc(e);
    }
    fn dec(d: &mut Dec) -> Result<ExitEffect, CodecError> {
        Ok(ExitEffect { isets: Codec::dec(d)?, dsets: Codec::dec(d)? })
    }
}

impl Codec for CacheSummary {
    fn enc(&self, e: &mut Enc) {
        e.u64(self.evaluations);
        self.reached.enc(e);
        self.classes.enc(e);
        self.ps_fetch.enc(e);
        self.ps_data.enc(e);
        self.exits.enc(e);
    }
    fn dec(d: &mut Dec) -> Result<CacheSummary, CodecError> {
        Ok(CacheSummary {
            evaluations: d.u64()?,
            reached: Codec::dec(d)?,
            classes: Codec::dec(d)?,
            ps_fetch: Codec::dec(d)?,
            ps_data: Codec::dec(d)?,
            exits: Codec::dec(d)?,
        })
    }
}

/// Groups the lines a region touches by cache set.
fn footprint(
    config: Option<CacheConfig>,
    addrs: impl Iterator<Item = u32>,
) -> Vec<(u32, Vec<u32>)> {
    let Some(c) = config else { return Vec::new() };
    let mut per_set: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
    for a in addrs {
        per_set.entry(c.set_index(a)).or_default().insert(c.line_addr(a));
    }
    per_set.into_iter().map(|(si, lines)| (si, lines.into_iter().collect())).collect()
}

/// `assoc` line addresses mapping to set `si` that collide with no line
/// in `avoid` (the footprint): the ghost lines whose exit ages encode
/// the non-footprint transformer. Tags count down from the top of the
/// address space, far from any program line.
fn ghost_lines(c: CacheConfig, si: u32, avoid: &[u32]) -> Vec<u32> {
    let stride = u64::from(c.sets() * c.line_bytes());
    let off = u64::from(si * c.line_bytes());
    let mut out = Vec::with_capacity(c.assoc() as usize);
    let mut tag = u64::from(u32::MAX) / stride;
    while out.len() < c.assoc() as usize {
        let v = tag * stride + off;
        if v <= u64::from(u32::MAX) {
            let line = v as u32;
            if avoid.binary_search(&line).is_err() {
                out.push(line);
            }
        }
        tag = tag.checked_sub(1).expect("address space exhausted for ghost lines");
    }
    out
}

/// Builds the canonical region description, or `None` when the region
/// is not summarizable (a load with an unenumerable address set).
fn build_info(spec: &RegionSpec, icfg: &Icfg, transfer: &CacheTransfer<'_>) -> Option<RegionInfo> {
    let mut nodes = Vec::with_capacity(spec.nodes.len());
    for &n in &spec.nodes {
        let nd = icfg.node(n);
        let block = transfer.cfg.block(nd.block);
        let mut insns = Vec::with_capacity(block.insns.len());
        for &(addr, insn) in &block.insns {
            let is_load = insn.is_load();
            let lines = if is_load && transfer.dcache.is_some() {
                match transfer.data.get(&(addr, nd.ctx))? {
                    DataAccess::Lines(l) => Some(l.clone()),
                    DataAccess::Clobber(_) => return None,
                }
            } else {
                None
            };
            insns.push(InsnInfo { addr, is_load, lines });
        }
        nodes.push(insns);
    }
    let edges: Vec<(u32, u32)> = spec.edges.iter().map(|&(f, t, _)| (f, t)).collect();
    let exit_froms: Vec<u32> = spec.exits.iter().map(|&(f, _)| f).collect();

    let ifoot = footprint(transfer.icache, nodes.iter().flatten().map(|i| i.addr));
    let dfoot = footprint(
        transfer.dcache,
        nodes.iter().flatten().flat_map(|i| i.lines.iter().flatten().copied()),
    );
    let ighosts = match transfer.icache {
        Some(c) => ifoot.iter().map(|(si, lines)| ghost_lines(c, *si, lines)).collect(),
        None => Vec::new(),
    };
    let dghosts = match transfer.dcache {
        Some(c) => dfoot.iter().map(|(si, lines)| ghost_lines(c, *si, lines)).collect(),
        None => Vec::new(),
    };

    let mut e = Enc::new();
    e.u8(SUMMARY_VERSION);
    transfer.icache.enc(&mut e);
    transfer.dcache.enc(&mut e);
    e.len_prefix(nodes.len());
    for insns in &nodes {
        e.len_prefix(insns.len());
        for i in insns {
            e.u32(i.addr);
            i.is_load.enc(&mut e);
            i.lines.enc(&mut e);
        }
    }
    edges.enc(&mut e);
    exit_froms.enc(&mut e);

    Some(RegionInfo {
        nodes,
        edges,
        exit_froms,
        ifoot,
        dfoot,
        ighosts,
        dghosts,
        bytes: e.into_bytes(),
    })
}

fn pers_get(set: &PersSet, line: u32) -> Option<Conflicts> {
    set.binary_search_by_key(&line, |&(l, _)| l).ok().map(|i| set[i].1)
}

fn pers_insert(set: &mut PersSet, line: u32, c: Conflicts) {
    match set.binary_search_by_key(&line, |&(l, _)| l) {
        Ok(i) => set[i].1 = c,
        Err(i) => set.insert(i, (line, c)),
    }
}

/// Projects the entry must sets onto the footprint (into the key) and
/// seeds the local state: projected footprint lines plus ghosts at ages
/// `0..assoc`.
fn project_must(
    e: &mut Enc,
    entry: &MustCache,
    seed: &mut MustCache,
    foot: &[(u32, Vec<u32>)],
    ghosts: &[Vec<u32>],
) {
    for ((si, lines), gs) in foot.iter().zip(ghosts) {
        let set = entry.set(*si as usize);
        let present: Vec<(u32, u8)> =
            lines.iter().filter_map(|&l| set.get(l).map(|a| (l, a))).collect();
        present.enc(e);
        let out = seed.set_mut(*si as usize);
        for &(l, a) in &present {
            out.insert(l, a);
        }
        for (k, &g) in gs.iter().enumerate() {
            out.insert(g, k as u8);
        }
    }
}

fn project_may(
    e: &mut Enc,
    entry: &MayCache,
    seed: &mut MayCache,
    foot: &[(u32, Vec<u32>)],
    ghosts: &[Vec<u32>],
) {
    for ((si, lines), gs) in foot.iter().zip(ghosts) {
        match entry.set(*si as usize) {
            SetState::Top => {
                e.u8(1);
                *seed.set_mut(*si as usize) = SetState::Top;
            }
            SetState::Map(m) => {
                e.u8(0);
                let present: Vec<(u32, u8)> =
                    lines.iter().filter_map(|&l| m.get(l).map(|a| (l, a))).collect();
                present.enc(e);
                let SetState::Map(out) = seed.set_mut(*si as usize) else {
                    unreachable!("fresh may set is a map")
                };
                for &(l, a) in &present {
                    out.insert(l, a);
                }
                for (k, &g) in gs.iter().enumerate() {
                    out.insert(g, k as u8);
                }
            }
        }
    }
}

fn project_pers(
    e: &mut Enc,
    entry: &PersCache,
    seed: &mut PersCache,
    foot: &[(u32, Vec<u32>)],
    ghosts: &[Vec<u32>],
) {
    for ((si, lines), gs) in foot.iter().zip(ghosts) {
        let set = entry.set(*si as usize);
        let present: Vec<(u32, Conflicts)> =
            lines.iter().filter_map(|&l| pers_get(set, l).map(|c| (l, c))).collect();
        present.enc(e);
        let out = seed.set_mut(*si as usize);
        for &(l, c) in &present {
            pers_insert(out, l, c);
        }
        pers_insert(out, gs[0], Conflicts::none());
    }
}

/// Builds the entry-class key bytes and the seeded local entry state.
fn project(
    entry: &CacheState,
    info: &RegionInfo,
    icache: Option<CacheConfig>,
    dcache: Option<CacheConfig>,
) -> (Vec<u8>, CacheState) {
    let mut e = Enc::new();
    let mut seed = CacheState::new(icache, dcache);
    if icache.is_some() {
        let x = "icache domains present";
        project_must(
            &mut e,
            entry.imust.as_ref().expect(x),
            seed.imust.as_mut().expect(x),
            &info.ifoot,
            &info.ighosts,
        );
        project_may(
            &mut e,
            entry.imay.as_ref().expect(x),
            seed.imay.as_mut().expect(x),
            &info.ifoot,
            &info.ighosts,
        );
        project_pers(
            &mut e,
            entry.ipers.as_ref().expect(x),
            seed.ipers.as_mut().expect(x),
            &info.ifoot,
            &info.ighosts,
        );
    }
    if dcache.is_some() {
        let x = "dcache domains present";
        project_must(
            &mut e,
            entry.dmust.as_ref().expect(x),
            seed.dmust.as_mut().expect(x),
            &info.dfoot,
            &info.dghosts,
        );
        project_may(
            &mut e,
            entry.dmay.as_ref().expect(x),
            seed.dmay.as_mut().expect(x),
            &info.dfoot,
            &info.dghosts,
        );
        project_pers(
            &mut e,
            entry.dpers.as_ref().expect(x),
            seed.dpers.as_mut().expect(x),
            &info.dfoot,
            &info.dghosts,
        );
    }
    (e.into_bytes(), seed)
}

/// Reads one touched set's exit transformation off the local exit
/// state: footprint entries directly, ghost entries as the table.
fn extract_set(
    must: &MustCache,
    may: &MayCache,
    pers: &PersCache,
    si: usize,
    ghosts: &[u32],
    assoc: usize,
) -> SetEffect {
    let mut must_lines = Vec::new();
    let mut must_table = vec![None; assoc];
    for (l, a) in must.set(si).iter() {
        match ghosts.iter().position(|&g| g == l) {
            Some(k) => must_table[k] = Some(a),
            None => must_lines.push((l, a)),
        }
    }
    let (may_top, may_lines, may_table) = match may.set(si) {
        SetState::Top => (true, Vec::new(), vec![None; assoc]),
        SetState::Map(m) => {
            let mut lines = Vec::new();
            let mut table = vec![None; assoc];
            for (l, a) in m.iter() {
                match ghosts.iter().position(|&g| g == l) {
                    Some(k) => table[k] = Some(a),
                    None => lines.push((l, a)),
                }
            }
            (false, lines, table)
        }
    };
    let mut pers_lines = Vec::new();
    let mut pers_add = Conflicts::none();
    for &(l, c) in pers.set(si).iter() {
        if l == ghosts[0] {
            pers_add = c;
        } else {
            pers_lines.push((l, c));
        }
    }
    SetEffect { must_lines, must_table, may_top, may_lines, may_table, pers_lines, pers_add }
}

fn extract_exit(
    s: &CacheState,
    info: &RegionInfo,
    icache: Option<CacheConfig>,
    dcache: Option<CacheConfig>,
) -> ExitEffect {
    let mut isets = Vec::with_capacity(info.ifoot.len());
    if let Some(c) = icache {
        let x = "icache domains present";
        for ((si, _), gs) in info.ifoot.iter().zip(&info.ighosts) {
            isets.push(extract_set(
                s.imust.as_ref().expect(x),
                s.imay.as_ref().expect(x),
                s.ipers.as_ref().expect(x),
                *si as usize,
                gs,
                c.assoc() as usize,
            ));
        }
    }
    let mut dsets = Vec::with_capacity(info.dfoot.len());
    if let Some(c) = dcache {
        let x = "dcache domains present";
        for ((si, _), gs) in info.dfoot.iter().zip(&info.dghosts) {
            dsets.push(extract_set(
                s.dmust.as_ref().expect(x),
                s.dmay.as_ref().expect(x),
                s.dpers.as_ref().expect(x),
                *si as usize,
                gs,
                c.assoc() as usize,
            ));
        }
    }
    ExitEffect { isets, dsets }
}

/// Runs the region's fixpoint locally on the seeded entry state. The
/// region is acyclic and topologically ordered, so a single forward
/// pass visits every node exactly as the monolithic solver would.
fn compute_summary(
    info: &RegionInfo,
    icache: Option<CacheConfig>,
    dcache: Option<CacheConfig>,
    seed: CacheState,
) -> CacheSummary {
    let k = info.nodes.len();
    let mut ins: Vec<Option<CacheState>> = vec![None; k];
    ins[0] = Some(seed);
    let mut reached = vec![false; k];
    let mut classes: Vec<Vec<AccessClass>> = vec![Vec::new(); k];
    let mut ps_fetch = BTreeSet::new();
    let mut ps_data = BTreeSet::new();
    let mut exit_states: Vec<Option<CacheState>> = vec![None; info.exit_froms.len()];
    let mut evaluations = 0u64;
    for i in 0..k {
        let Some(mut s) = ins[i].take() else { continue };
        reached[i] = true;
        evaluations += 1;
        let mut cls = Vec::with_capacity(info.nodes[i].len());
        let mut prev_line = None;
        for insn in &info.nodes[i] {
            // Classify against the state *before* the access, exactly
            // like the monolithic classification replay.
            let fetch = match icache {
                Some(ic) => {
                    let c = classify(&s, &[ic.line_addr(insn.addr)], false);
                    if c == Classification::Persistent {
                        ps_fetch.insert(ic.line_addr(insn.addr));
                    }
                    c
                }
                None => Classification::AlwaysMiss,
            };
            let data = if insn.is_load {
                Some(match &insn.lines {
                    Some(lines) => {
                        let c = classify(&s, lines, true);
                        if c == Classification::Persistent {
                            ps_data.extend(lines.iter().copied());
                        }
                        c
                    }
                    None => Classification::AlwaysMiss,
                })
            } else {
                None
            };
            cls.push(AccessClass { fetch, data });
            // Apply the access (same same-line fetch skip as the
            // monolithic transfer).
            let line = icache.map(|ic| ic.line_addr(insn.addr));
            if line != prev_line || line.is_none() {
                prev_line = line;
                if let Some(m) = s.imust.as_mut() {
                    m.access(insn.addr);
                }
                if let Some(m) = s.imay.as_mut() {
                    m.access(insn.addr);
                }
                if let Some(m) = s.ipers.as_mut() {
                    m.access(insn.addr);
                }
            }
            if let Some(lines) = &insn.lines {
                if let Some(m) = s.dmust.as_mut() {
                    m.access_any(lines);
                }
                if let Some(m) = s.dmay.as_mut() {
                    m.access_any(lines);
                }
                if let Some(m) = s.dpers.as_mut() {
                    m.access_any(lines);
                }
            }
        }
        classes[i] = cls;
        for (x, &lf) in info.exit_froms.iter().enumerate() {
            if lf as usize == i {
                exit_states[x] = Some(s.clone());
            }
        }
        for &(lf, lt) in &info.edges {
            if lf as usize != i {
                continue;
            }
            match &mut ins[lt as usize] {
                Some(prev) => {
                    prev.join_from(&s);
                }
                slot @ None => *slot = Some(s.clone()),
            }
        }
    }
    let exits = exit_states
        .iter()
        .map(|o| o.as_ref().map(|s| extract_exit(s, info, icache, dcache)))
        .collect();
    CacheSummary {
        evaluations,
        reached,
        classes,
        ps_fetch: ps_fetch.into_iter().collect(),
        ps_data: ps_data.into_iter().collect(),
        exits,
    }
}

fn apply_must(must: &mut MustCache, si: usize, foot: &[u32], se: &SetEffect) {
    let set = must.set_mut(si);
    set.update_retain(|l, a| {
        if foot.binary_search(&l).is_ok() {
            None // footprint lines are replaced by their exit entries
        } else {
            se.must_table.get(a as usize).copied().flatten()
        }
    });
    for &(l, a) in &se.must_lines {
        set.insert(l, a);
    }
}

fn apply_may(may: &mut MayCache, si: usize, foot: &[u32], se: &SetEffect) {
    if se.may_top {
        // ⊤ at entry (part of the key) stays ⊤: nothing to rewrite.
        return;
    }
    let SetState::Map(m) = may.set_mut(si) else {
        unreachable!("entry ⊤ is recorded in the summary key")
    };
    m.update_retain(|l, a| {
        if foot.binary_search(&l).is_ok() {
            None
        } else {
            se.may_table.get(a as usize).copied().flatten()
        }
    });
    for &(l, a) in &se.may_lines {
        m.insert(l, a);
    }
}

fn apply_pers(pers: &mut PersCache, si: usize, foot: &[u32], se: &SetEffect, assoc: u8) {
    let set = pers.set_mut(si);
    set.retain(|&(l, _)| foot.binary_search(&l).is_err());
    for (_, c) in set.iter_mut() {
        c.union(&se.pers_add, assoc);
    }
    for &(l, c) in &se.pers_lines {
        pers_insert(set, l, c);
    }
}

/// Applies a region's exit transformation to a concrete entry state.
fn apply_exit(
    entry: &CacheState,
    eff: &ExitEffect,
    info: &RegionInfo,
    icache: Option<CacheConfig>,
    dcache: Option<CacheConfig>,
) -> CacheState {
    let mut s = entry.clone();
    if let Some(c) = icache {
        let x = "icache domains present";
        for ((si, lines), se) in info.ifoot.iter().zip(&eff.isets) {
            apply_must(s.imust.as_mut().expect(x), *si as usize, lines, se);
            apply_may(s.imay.as_mut().expect(x), *si as usize, lines, se);
            apply_pers(s.ipers.as_mut().expect(x), *si as usize, lines, se, c.assoc() as u8);
        }
    }
    if let Some(c) = dcache {
        let x = "dcache domains present";
        for ((si, lines), se) in info.dfoot.iter().zip(&eff.dsets) {
            apply_must(s.dmust.as_mut().expect(x), *si as usize, lines, se);
            apply_may(s.dmay.as_mut().expect(x), *si as usize, lines, se);
            apply_pers(s.dpers.as_mut().expect(x), *si as usize, lines, se, c.assoc() as u8);
        }
    }
    s
}

impl CacheAnalysis {
    /// Runs the cache analysis with per-procedure summaries: carved
    /// call-body regions are evaluated through the byte-level memo (one
    /// fixpoint per entry-state class) and composed over the supergraph
    /// by [`stamp_ai::solve_with_regions`].
    ///
    /// Returns `None` when nothing is summarizable (no carvable region,
    /// a region declined mid-solve, or corrupt memo bytes); the caller
    /// must then fall back to [`CacheAnalysis::run`], which is always
    /// sound. On success the result is bit-identical to the monolithic
    /// analysis: same classifications, persistent lines, and evaluation
    /// count.
    pub fn run_summarized(
        hw: &HwConfig,
        cfg: &Cfg,
        icfg: &Icfg,
        va: &ValueAnalysis,
        memo: &mut dyn UarchMemo,
    ) -> Option<(CacheAnalysis, UarchSummaryStats)> {
        let mut transfer = CacheTransfer {
            cfg,
            icache: hw.icache,
            dcache: hw.dcache,
            infeasible: va.infeasible_edges().iter().copied().collect(),
            data: data_accesses(hw.dcache, cfg, icfg, va),
        };
        let mut plan = carve_regions(icfg, &transfer.infeasible);
        if plan.is_empty() {
            return None;
        }
        let infos_all: Vec<Option<RegionInfo>> =
            plan.regions.iter().map(|spec| build_info(spec, icfg, &transfer)).collect();
        {
            let mut it = infos_all.iter();
            plan.retain(|_| it.next().expect("one flag per region").is_some());
        }
        let infos: Vec<RegionInfo> = infos_all.into_iter().flatten().collect();
        if plan.is_empty() {
            return None;
        }

        let mut applied: Vec<Option<Rc<CacheSummary>>> = vec![None; plan.regions.len()];
        let mut computed = 0usize;
        let mut reused = 0usize;
        let (icache, dcache) = (hw.icache, hw.dcache);
        let fixpoint = solve_with_regions(icfg, &mut transfer, &plan, u32::MAX, |r, entry| {
            let info = &infos[r];
            let (proj, seed) = project(entry, info, icache, dcache);
            let mut key = Vec::with_capacity(info.bytes.len() + proj.len());
            key.extend_from_slice(&info.bytes);
            key.extend_from_slice(&proj);
            let mut fresh = false;
            let bytes = memo.recall(&key, &mut || {
                fresh = true;
                stamp_codec::encode_value(&compute_summary(info, icache, dcache, seed.clone()))
            });
            if fresh {
                computed += 1;
            } else {
                reused += 1;
            }
            let summary: CacheSummary = stamp_codec::decode_value(&bytes).ok()?;
            if summary.reached.len() != info.nodes.len()
                || summary.exits.len() != info.exit_froms.len()
            {
                return None; // foreign bytes under our key: fall back
            }
            let outcome = RegionOutcome {
                exit_outs: summary
                    .exits
                    .iter()
                    .map(|eff| eff.as_ref().map(|e| apply_exit(entry, e, info, icache, dcache)))
                    .collect(),
                reached: summary.reached.clone(),
                evaluations: summary.evaluations,
            };
            applied[r] = Some(Rc::new(summary));
            Some(outcome)
        })?;

        let (mut classes, mut ps_fetch_lines, mut ps_data_lines) =
            replay_classes(&transfer, hw, cfg, icfg, &fixpoint);
        for (r, spec) in plan.regions.iter().enumerate() {
            let Some(summary) = &applied[r] else { continue };
            let info = &infos[r];
            for (i, &node) in spec.nodes.iter().enumerate() {
                if !summary.reached[i] {
                    continue;
                }
                let ctx = icfg.node(node).ctx;
                for (insn, class) in info.nodes[i].iter().zip(&summary.classes[i]) {
                    classes.insert((insn.addr, ctx), *class);
                }
            }
            ps_fetch_lines.extend(summary.ps_fetch.iter().copied());
            ps_data_lines.extend(summary.ps_data.iter().copied());
        }
        let stats = UarchSummaryStats { regions: plan.regions.len(), computed, reused };
        Some((
            CacheAnalysis {
                classes,
                icache: hw.icache,
                dcache: hw.dcache,
                ps_fetch_lines,
                ps_data_lines,
                evaluations: fixpoint.evaluations,
            },
            stats,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stamp_ai::VivuConfig;
    use stamp_cfg::CfgBuilder;
    use stamp_isa::asm::assemble;
    use stamp_value::ValueOptions;

    /// Runs both modes and checks bit-identity of every observable.
    fn check(src: &str, hw: &HwConfig) -> Option<UarchSummaryStats> {
        let p = assemble(src).expect("assembles");
        let cfg = CfgBuilder::new(&p).build().expect("builds");
        let icfg = Icfg::build(&cfg, &VivuConfig::default()).expect("expands");
        let va = ValueAnalysis::run(&p, hw, &cfg, &icfg, &ValueOptions::default());
        let mono = CacheAnalysis::run(hw, &cfg, &icfg, &va);
        let mut memo = LocalUarchMemo::default();
        let (sum, stats) = CacheAnalysis::run_summarized(hw, &cfg, &icfg, &va, &mut memo)?;
        assert_eq!(sum.classes(), mono.classes(), "classifications differ for {src}");
        assert_eq!(sum.ps_fetch_lines(), mono.ps_fetch_lines(), "ps fetch lines for {src}");
        assert_eq!(sum.ps_data_lines(), mono.ps_data_lines(), "ps data lines for {src}");
        assert_eq!(sum.evaluations, mono.evaluations, "evaluations for {src}");
        Some(stats)
    }

    #[test]
    fn repeated_calls_reuse_the_summary() {
        let src = ".text
main: call f
      call f
      call f
      halt
f:    li r1, 1
      ret
";
        let stats = check(src, &HwConfig::default()).expect("regions carved");
        assert_eq!(stats.regions, 3);
        // Call 1 enters cold, call 2 with f's line hot — two classes.
        // Call 3 repeats call 2's entry class and hits the memo.
        assert_eq!(stats.computed, 2, "{stats:?}");
        assert_eq!(stats.reused, 1, "{stats:?}");
    }

    #[test]
    fn summarized_matches_monolithic_with_loads_and_branches() {
        let srcs = [
            // Data loads inside the callee.
            ".text
main: la r1, v
      call f
      call f
      call f
      halt
f:    lw r2, 0(r1)
      ret
.data
v:    .word 7
",
            // Branchy callee (the regions.rs CALL_PAIR shape).
            ".text
main: li r1, 1
      call f
      add r2, r1, r1
      call f
      halt
f:    addi r1, r1, 1
      beq r1, r0, g
      ret
g:    ret
",
            // Nested call: g's body is interior to f's region.
            ".text
main: call f
      halt
f:    call g
      ret
g:    li r3, 9
      ret
",
        ];
        for src in srcs {
            let stats = check(src, &HwConfig::default()).expect("regions carved");
            assert!(stats.computed + stats.reused > 0, "{stats:?}");
        }
    }

    #[test]
    fn small_cache_forces_eviction_through_the_transformer() {
        // 2 sets × 2 ways × 16B: the callee's footprint collides with
        // the caller's lines, exercising the ghost transformer tables.
        let hw = HwConfig {
            icache: Some(CacheConfig::new(2, 2, 16)),
            dcache: Some(CacheConfig::new(2, 2, 16)),
            ..HwConfig::default()
        };
        let src = ".text
main: la r1, v
      lw r2, 0(r1)
      call f
      lw r3, 0(r1)
      call f
      halt
f:    lw r4, 4(r1)
      lw r5, 8(r1)
      ret
.data
v:    .word 1
      .word 2
      .word 3
";
        check(src, &hw).expect("regions carved");
    }

    #[test]
    fn straight_line_code_has_no_regions() {
        let hw = HwConfig::default();
        assert!(check(".text\nmain: li r1, 2\nhalt\n", &hw).is_none());
    }

    #[test]
    fn clobbering_callee_is_not_summarized() {
        // The load target is unknown, so the callee clobbers the
        // D-cache: its region is rejected and (being the only one) the
        // whole run falls back.
        let hw = HwConfig::default();
        let src = ".text
main: call f
      halt
f:    lw r2, 0(r2)
      ret
";
        assert!(check(src, &hw).is_none());
    }

    #[test]
    fn conflicts_codec_roundtrips() {
        let mut c = Conflicts::none();
        c.add(0x40, 8);
        c.add(0x10, 8);
        for v in [Conflicts::Sat, Conflicts::none(), c] {
            let bytes = stamp_codec::encode_value(&v);
            let back: Conflicts = stamp_codec::decode_value(&bytes).expect("roundtrips");
            assert_eq!(v, back);
        }
    }
}
