//! The must/may/persistence abstract cache domains.
//!
//! Each must/may abstract cache set is a [`LineSet`]: a fixed inline
//! array of `(line, age)` pairs sized for the associativities we model
//! (assoc ≤ 8 in every configuration), with a heap spill for the rare
//! larger sets a may analysis can accumulate. All updates are single
//! in-place passes — the hot `access` path performs no allocation, where
//! the previous `BTreeMap` representation allocated a key vector (plus
//! tree nodes) on every update. The persistence domain instead maps each
//! line to its *conflict set* — the distinct other lines possibly
//! accessed since the line's last access (see [`PersCache`]); age-based
//! persistence is unsound. Sharing is copy-on-write at *two*
//! granularities: the per-domain set vector is an `Rc`, and every
//! individual cache set inside it is its own `Rc`. Cloning a
//! [`CacheState`] through an unchanged block or edge is six pointer
//! bumps, and a transfer that touches one cache set deep-copies only
//! that set — not the whole vector — which keeps the per-node cost of
//! the fixpoint proportional to the lines the block actually touches.

use std::rc::Rc;

use stamp_hw::CacheConfig;

/// Inline capacity of one abstract cache set. Covers every modeled
/// associativity; a must set can never exceed the associativity, and
/// may/persistence sets only spill under heavy address-set joins.
pub(crate) const INLINE_LINES: usize = 8;

/// One abstract cache set: `(line address, age bound)` pairs sorted by
/// line, stored inline with a heap spill.
#[derive(Clone, Debug, Default)]
pub(crate) struct LineSet {
    /// Number of live `inline` entries.
    len: u8,
    inline: [(u32, u8); INLINE_LINES],
    /// Sorted overflow; empty until the set outgrows the inline array,
    /// after which it holds *all* entries.
    spill: Vec<(u32, u8)>,
}

impl LineSet {
    fn entries(&self) -> &[(u32, u8)] {
        if self.spill.is_empty() {
            &self.inline[..self.len as usize]
        } else {
            &self.spill
        }
    }

    fn entries_mut(&mut self) -> &mut [(u32, u8)] {
        if self.spill.is_empty() {
            &mut self.inline[..self.len as usize]
        } else {
            &mut self.spill
        }
    }

    /// The age bound of `line`, if resident.
    pub(crate) fn get(&self, line: u32) -> Option<u8> {
        self.entries().binary_search_by_key(&line, |&(l, _)| l).ok().map(|i| self.entries()[i].1)
    }

    pub(crate) fn contains(&self, line: u32) -> bool {
        self.get(line).is_some()
    }

    pub(crate) fn iter(&self) -> impl Iterator<Item = (u32, u8)> + '_ {
        self.entries().iter().copied()
    }

    /// Inserts or updates `line`.
    pub(crate) fn insert(&mut self, line: u32, age: u8) {
        match self.entries().binary_search_by_key(&line, |&(l, _)| l) {
            Ok(i) => self.entries_mut()[i].1 = age,
            Err(i) => {
                if !self.spill.is_empty() {
                    self.spill.insert(i, (line, age));
                } else if (self.len as usize) < INLINE_LINES {
                    let n = self.len as usize;
                    self.inline.copy_within(i..n, i + 1);
                    self.inline[i] = (line, age);
                    self.len += 1;
                } else {
                    // Overflow: move everything to the spill vector.
                    self.spill.reserve(INLINE_LINES + 1);
                    self.spill.extend_from_slice(&self.inline);
                    self.spill.insert(i, (line, age));
                    self.len = 0;
                }
            }
        }
    }

    /// One in-place pass: keep each `(line, age)` entry for which `f`
    /// returns a new age, drop the rest. `f` must not change line order
    /// (ages only — line keys are never rewritten).
    pub(crate) fn update_retain(&mut self, mut f: impl FnMut(u32, u8) -> Option<u8>) {
        let slice = if self.spill.is_empty() {
            &mut self.inline[..self.len as usize]
        } else {
            &mut self.spill[..]
        };
        let mut w = 0;
        for r in 0..slice.len() {
            let (line, age) = slice[r];
            if let Some(new_age) = f(line, age) {
                slice[w] = (line, new_age);
                w += 1;
            }
        }
        if self.spill.is_empty() {
            self.len = w as u8;
        } else {
            self.spill.truncate(w);
        }
    }
}

/// Equality is on contents, independent of inline/spill placement.
impl PartialEq for LineSet {
    fn eq(&self, other: &LineSet) -> bool {
        self.entries() == other.entries()
    }
}

impl Eq for LineSet {}

/// One abstract cache set of the may analysis. `Top` means "any line may
/// be present at any age".
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum SetState {
    Map(LineSet),
    Top,
}

/// Applies `f` to the set at `si` of every cache set index requested
/// (`None` = all sets).
fn for_sets(sets_len: u32, set_indices: Option<&[u32]>, mut f: impl FnMut(usize)) {
    match set_indices {
        Some(idx) => idx.iter().for_each(|&si| f(si as usize)),
        None => (0..sets_len).for_each(|si| f(si as usize)),
    }
}

/// The **must** cache: ages are *upper* bounds valid in every execution.
/// Membership guarantees a hit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MustCache {
    config: CacheConfig,
    sets: Rc<Vec<Rc<LineSet>>>,
}

impl MustCache {
    /// An empty must cache (nothing guaranteed).
    // Every slot deliberately shares one empty-set allocation;
    // `Rc::make_mut` un-shares a set on its first write.
    #[allow(clippy::rc_clone_in_vec_init)]
    pub fn new(config: CacheConfig) -> MustCache {
        MustCache {
            config,
            sets: Rc::new(vec![Rc::new(LineSet::default()); config.sets() as usize]),
        }
    }

    /// Returns `true` if the line containing `addr` hits in every
    /// execution.
    pub fn definitely_cached(&self, addr: u32) -> bool {
        let line = self.config.line_addr(addr);
        self.sets[self.config.set_index(addr) as usize].contains(line)
    }

    /// Applies one access to the line containing `addr`
    /// (Ferdinand's must update): a single in-place pass, no allocation.
    pub fn access(&mut self, addr: u32) {
        let a = self.config.assoc() as u8;
        let line = self.config.line_addr(addr);
        let set =
            Rc::make_mut(&mut Rc::make_mut(&mut self.sets)[self.config.set_index(addr) as usize]);
        let z_age = set.get(line).unwrap_or(a);
        set.update_retain(|y, age| {
            if y != line && age < z_age {
                if age + 1 >= a {
                    None
                } else {
                    Some(age + 1)
                }
            } else {
                Some(age)
            }
        });
        set.insert(line, 0);
    }

    /// Applies an access whose line is only known to lie in `lines`
    /// (join over the possibilities).
    pub fn access_any(&mut self, lines: &[u32]) {
        match lines {
            [] => {}
            [one] => self.access(*one),
            _ => {
                let mut acc: Option<MustCache> = None;
                for &l in lines {
                    let mut c = self.clone();
                    c.access(l);
                    acc = Some(match acc {
                        None => c,
                        Some(mut p) => {
                            p.join_from(&c);
                            p
                        }
                    });
                }
                *self = acc.expect("non-empty lines");
            }
        }
    }

    /// Sound treatment of an access with an unbounded address set that
    /// may touch the given cache sets (`None` = all sets): every line
    /// ages as if displaced.
    pub fn clobber(&mut self, set_indices: Option<&[u32]>) {
        let a = self.config.assoc() as u8;
        let sets = Rc::make_mut(&mut self.sets);
        for_sets(self.config.sets(), set_indices, |si| {
            if sets[si].iter().next().is_none() {
                return;
            }
            Rc::make_mut(&mut sets[si]).update_retain(|_, age| {
                if age + 1 >= a {
                    None
                } else {
                    Some(age + 1)
                }
            });
        });
    }

    /// Lattice join (set intersection, maximum ages). Returns `true` if
    /// `self` changed. Copy-on-write is per cache set: only sets that
    /// actually change are un-shared and rewritten.
    pub fn join_from(&mut self, other: &MustCache) -> bool {
        if Rc::ptr_eq(&self.sets, &other.sets) {
            return false;
        }
        let mut changed = false;
        for si in 0..other.sets.len() {
            let o = &other.sets[si];
            let grows = {
                let s = &self.sets[si];
                !Rc::ptr_eq(s, o)
                    && s.iter().any(|(k, sa)| match o.get(k) {
                        None => true,
                        Some(oa) => oa > sa,
                    })
            };
            if !grows {
                continue;
            }
            let slot = &mut Rc::make_mut(&mut self.sets)[si];
            Rc::make_mut(slot).update_retain(|k, sa| o.get(k).map(|oa| sa.max(oa)));
            changed = true;
        }
        changed
    }

    /// Partial order: `self ⊑ other` iff `self` guarantees everything
    /// `other` does.
    pub fn le(&self, other: &MustCache) -> bool {
        Rc::ptr_eq(&self.sets, &other.sets)
            || self.sets.iter().zip(other.sets.iter()).all(|(s, o)| {
                Rc::ptr_eq(s, o) || o.iter().all(|(k, oa)| s.get(k).is_some_and(|sa| sa <= oa))
            })
    }

    /// Direct read access to one cache set (procedure summaries).
    pub(crate) fn set(&self, si: usize) -> &LineSet {
        &self.sets[si]
    }

    /// Direct write access to one cache set (procedure summaries).
    pub(crate) fn set_mut(&mut self, si: usize) -> &mut LineSet {
        Rc::make_mut(&mut Rc::make_mut(&mut self.sets)[si])
    }
}

/// The **may** cache: ages are *lower* bounds over all executions in
/// which the line is cached. Absence guarantees a miss.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MayCache {
    config: CacheConfig,
    sets: Rc<Vec<Rc<SetState>>>,
}

impl MayCache {
    /// An empty may cache (everything is a guaranteed miss initially).
    // Slots share one empty-set allocation; un-shared on first write.
    #[allow(clippy::rc_clone_in_vec_init)]
    pub fn new(config: CacheConfig) -> MayCache {
        MayCache {
            config,
            sets: Rc::new(vec![Rc::new(SetState::Map(LineSet::default())); config.sets() as usize]),
        }
    }

    /// Returns `true` if the line containing `addr` may be cached.
    pub fn possibly_cached(&self, addr: u32) -> bool {
        let line = self.config.line_addr(addr);
        match &*self.sets[self.config.set_index(addr) as usize] {
            SetState::Map(m) => m.contains(line),
            SetState::Top => true,
        }
    }

    /// Applies one access (Ferdinand's may update), in place.
    pub fn access(&mut self, addr: u32) {
        let a = self.config.assoc() as u8;
        let line = self.config.line_addr(addr);
        let si = self.config.set_index(addr) as usize;
        if matches!(*self.sets[si], SetState::Top) {
            return; // stays ⊤ (still sound)
        }
        let SetState::Map(m) = Rc::make_mut(&mut Rc::make_mut(&mut self.sets)[si]) else {
            unreachable!("checked above")
        };
        let z_age = m.get(line).unwrap_or(a);
        m.update_retain(|y, age| {
            // Ages are lower bounds: y provably ages only when it is
            // provably younger than z in every execution, i.e. when
            // its lower bound lies strictly below z's.
            if y != line && age < z_age {
                if age + 1 >= a {
                    None
                } else {
                    Some(age + 1)
                }
            } else {
                Some(age)
            }
        });
        m.insert(line, 0);
    }

    /// Access with a small set of candidate lines: union of outcomes.
    pub fn access_any(&mut self, lines: &[u32]) {
        match lines {
            [] => {}
            [one] => self.access(*one),
            _ => {
                let mut acc: Option<MayCache> = None;
                for &l in lines {
                    let mut c = self.clone();
                    c.access(l);
                    acc = Some(match acc {
                        None => c,
                        Some(mut p) => {
                            p.join_from(&c);
                            p
                        }
                    });
                }
                *self = acc.expect("non-empty lines");
            }
        }
    }

    /// Unbounded access: the touched sets may afterwards contain anything.
    pub fn clobber(&mut self, set_indices: Option<&[u32]>) {
        let sets = Rc::make_mut(&mut self.sets);
        for_sets(self.config.sets(), set_indices, |si| {
            if matches!(*sets[si], SetState::Top) {
                return;
            }
            sets[si] = Rc::new(SetState::Top);
        });
    }

    /// Lattice join (set union, minimum ages). Copy-on-write is per
    /// cache set; a set that becomes exactly `other`'s is shared rather
    /// than copied.
    pub fn join_from(&mut self, other: &MayCache) -> bool {
        if Rc::ptr_eq(&self.sets, &other.sets) {
            return false;
        }
        let mut changed = false;
        for si in 0..other.sets.len() {
            let o = &other.sets[si];
            enum Plan {
                Skip,
                Share,
                Merge,
            }
            let plan = {
                let s = &self.sets[si];
                if Rc::ptr_eq(s, o) {
                    Plan::Skip
                } else {
                    match (&**s, &**o) {
                        (SetState::Top, _) => Plan::Skip,
                        (SetState::Map(_), SetState::Top) => Plan::Share,
                        (SetState::Map(sm), SetState::Map(om)) => {
                            if sm.entries().is_empty() && !om.entries().is_empty() {
                                Plan::Share
                            } else if om.iter().any(|(k, oa)| match sm.get(k) {
                                None => true,
                                Some(sa) => oa < sa,
                            }) {
                                Plan::Merge
                            } else {
                                Plan::Skip
                            }
                        }
                    }
                }
            };
            match plan {
                Plan::Skip => continue,
                Plan::Share => {
                    Rc::make_mut(&mut self.sets)[si] = Rc::clone(o);
                }
                Plan::Merge => {
                    let slot = Rc::make_mut(&mut Rc::make_mut(&mut self.sets)[si]);
                    let SetState::Map(sm) = slot else { unreachable!("merge plan is map/map") };
                    let SetState::Map(om) = &**o else { unreachable!("merge plan is map/map") };
                    for (k, oa) in om.iter() {
                        match sm.get(k) {
                            None => sm.insert(k, oa),
                            Some(sa) if oa < sa => sm.insert(k, oa),
                            _ => {}
                        }
                    }
                }
            }
            changed = true;
        }
        changed
    }

    /// Direct read access to one cache set (procedure summaries).
    pub(crate) fn set(&self, si: usize) -> &SetState {
        &self.sets[si]
    }

    /// Direct write access to one cache set (procedure summaries).
    pub(crate) fn set_mut(&mut self, si: usize) -> &mut SetState {
        Rc::make_mut(&mut Rc::make_mut(&mut self.sets)[si])
    }

    /// Partial order: fewer possibilities ⊑ more possibilities.
    pub fn le(&self, other: &MayCache) -> bool {
        Rc::ptr_eq(&self.sets, &other.sets)
            || self.sets.iter().zip(other.sets.iter()).all(|(s, o)| {
                Rc::ptr_eq(s, o)
                    || match (&**s, &**o) {
                        (_, SetState::Top) => true,
                        (SetState::Top, SetState::Map(_)) => false,
                        (SetState::Map(sm), SetState::Map(om)) => {
                            sm.iter().all(|(k, sa)| om.get(k).is_some_and(|oa| oa <= sa))
                        }
                    }
            })
    }
}

/// The conflict record of one line in the persistence cache: the set of
/// *distinct* other lines that may have been accessed in the same cache
/// set since this line's last access. Under LRU a line's stack position
/// equals the number of distinct lines accessed since its last use, so
/// the line is provably resident while this set stays below the
/// associativity. Once it can reach the associativity the line may have
/// been evicted and the record saturates ([`Conflicts::Sat`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Conflicts {
    /// At most these distinct conflicting lines since the last access
    /// (`len` live entries, sorted). `len` is strictly below the
    /// associativity — reaching it saturates instead.
    Among { len: u8, lines: [u32; INLINE_LINES] },
    /// The line may have been evicted since its last access.
    Sat,
}

impl Conflicts {
    pub(crate) fn none() -> Conflicts {
        Conflicts::Among { len: 0, lines: [0; INLINE_LINES] }
    }

    /// Adds one conflicting line, saturating at `assoc` distinct
    /// conflicts (at which point the line may be evicted).
    pub(crate) fn add(&mut self, line: u32, assoc: u8) {
        if let Conflicts::Among { len, lines } = self {
            let n = *len as usize;
            if lines[..n].contains(&line) {
                return;
            }
            if n + 1 >= assoc as usize {
                *self = Conflicts::Sat;
            } else {
                let pos = lines[..n].partition_point(|&l| l < line);
                lines.copy_within(pos..n, pos + 1);
                lines[pos] = line;
                *len += 1;
            }
        }
    }

    /// Set union, saturating at `assoc`.
    pub(crate) fn union(&mut self, other: &Conflicts, assoc: u8) {
        match other {
            Conflicts::Sat => *self = Conflicts::Sat,
            Conflicts::Among { len, lines } => {
                for &l in &lines[..*len as usize] {
                    self.add(l, assoc);
                }
            }
        }
    }

    /// `self ⊆ other` (with `Sat` as ⊤).
    fn subset_of(&self, other: &Conflicts) -> bool {
        match (self, other) {
            (_, Conflicts::Sat) => true,
            (Conflicts::Sat, Conflicts::Among { .. }) => false,
            (Conflicts::Among { len: sl, lines: sv }, Conflicts::Among { len: ol, lines: ov }) => {
                sv[..*sl as usize].iter().all(|l| ov[..*ol as usize].contains(l))
            }
        }
    }
}

/// One persistence set: `line → conflicts`, sorted by line.
pub(crate) type PersSet = Vec<(u32, Conflicts)>;

/// The **persistence** cache, in the conflict-set formulation: for each
/// line ever accessed it tracks the distinct other lines that may have
/// hit the same cache set since the line's last access.
///
/// The classical age-based persistence update (aging only lines whose
/// bound lies below the accessed line's bound) is unsound here: in the
/// persistence domain, presence of the accessed line says nothing about
/// whether it is concretely cached, and a concrete *miss* ages every
/// resident line. Tracking the conflict set sidesteps ages entirely —
/// under LRU a line is resident iff fewer than `assoc` distinct lines
/// were accessed in its set since its last access, which is exactly what
/// the record bounds from above.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PersCache {
    config: CacheConfig,
    sets: Rc<Vec<Rc<PersSet>>>,
}

impl PersCache {
    /// An empty persistence cache (no line accessed yet).
    // Slots share one empty-set allocation; un-shared on first write.
    #[allow(clippy::rc_clone_in_vec_init)]
    pub fn new(config: CacheConfig) -> PersCache {
        assert!(
            config.assoc() as usize <= INLINE_LINES,
            "persistence conflict records hold at most {INLINE_LINES} lines"
        );
        PersCache { config, sets: Rc::new(vec![Rc::new(PersSet::new()); config.sets() as usize]) }
    }

    fn get(set: &PersSet, line: u32) -> Option<&Conflicts> {
        set.binary_search_by_key(&line, |&(l, _)| l).ok().map(|i| &set[i].1)
    }

    /// Returns `true` if every execution in which the line was accessed
    /// before leaves it resident now: fewer than `assoc` distinct
    /// conflicting lines since its last access. A first access may still
    /// miss — hence "persistent", not "always hit".
    pub fn persistent(&self, addr: u32) -> bool {
        let line = self.config.line_addr(addr);
        matches!(
            PersCache::get(&self.sets[self.config.set_index(addr) as usize], line),
            Some(Conflicts::Among { .. })
        )
    }

    /// Applies one access: the accessed line's conflict record resets,
    /// every other line in the set gains it as a conflict.
    pub fn access(&mut self, addr: u32) {
        let a = self.config.assoc() as u8;
        let line = self.config.line_addr(addr);
        let set =
            Rc::make_mut(&mut Rc::make_mut(&mut self.sets)[self.config.set_index(addr) as usize]);
        for (l, c) in set.iter_mut() {
            if *l != line {
                c.add(line, a);
            }
        }
        match set.binary_search_by_key(&line, |&(l, _)| l) {
            Ok(i) => set[i].1 = Conflicts::none(),
            Err(i) => set.insert(i, (line, Conflicts::none())),
        }
    }

    /// Access with several candidate lines (join over the possibilities).
    pub fn access_any(&mut self, lines: &[u32]) {
        match lines {
            [] => {}
            [one] => self.access(*one),
            _ => {
                let mut acc: Option<PersCache> = None;
                for &l in lines {
                    let mut c = self.clone();
                    c.access(l);
                    acc = Some(match acc {
                        None => c,
                        Some(mut p) => {
                            p.join_from(&c);
                            p
                        }
                    });
                }
                *self = acc.expect("non-empty lines");
            }
        }
    }

    /// Unbounded access: every line in the touched sets may have gained
    /// arbitrarily many conflicts.
    pub fn clobber(&mut self, set_indices: Option<&[u32]>) {
        let sets = Rc::make_mut(&mut self.sets);
        for_sets(self.config.sets(), set_indices, |si| {
            if sets[si].iter().all(|(_, c)| matches!(c, Conflicts::Sat)) {
                return;
            }
            for (_, c) in Rc::make_mut(&mut sets[si]).iter_mut() {
                *c = Conflicts::Sat;
            }
        });
    }

    /// Lattice join (pointwise conflict-set union; absence means "never
    /// accessed", which is *below* any record). Copy-on-write is per
    /// cache set; an empty set joining a non-empty one shares the other
    /// side's `Rc` instead of copying it.
    pub fn join_from(&mut self, other: &PersCache) -> bool {
        if Rc::ptr_eq(&self.sets, &other.sets) {
            return false;
        }
        let a = self.config.assoc() as u8;
        let mut changed = false;
        for si in 0..other.sets.len() {
            let o = &other.sets[si];
            let grows = {
                let s = &self.sets[si];
                !Rc::ptr_eq(s, o)
                    && o.iter().any(|(k, oc)| match PersCache::get(s, *k) {
                        None => true,
                        Some(sc) => !oc.subset_of(sc),
                    })
            };
            if !grows {
                continue;
            }
            if self.sets[si].is_empty() {
                Rc::make_mut(&mut self.sets)[si] = Rc::clone(o);
            } else {
                let s = Rc::make_mut(&mut Rc::make_mut(&mut self.sets)[si]);
                for (k, oc) in o.iter() {
                    match s.binary_search_by_key(k, |&(l, _)| l) {
                        Ok(i) => s[i].1.union(oc, a),
                        Err(i) => s.insert(i, (*k, *oc)),
                    }
                }
            }
            changed = true;
        }
        changed
    }

    /// Direct read access to one cache set (procedure summaries).
    pub(crate) fn set(&self, si: usize) -> &PersSet {
        &self.sets[si]
    }

    /// Direct write access to one cache set (procedure summaries).
    pub(crate) fn set_mut(&mut self, si: usize) -> &mut PersSet {
        Rc::make_mut(&mut Rc::make_mut(&mut self.sets)[si])
    }

    /// Partial order: fewer recorded lines / smaller conflict sets ⊑
    /// more.
    pub fn le(&self, other: &PersCache) -> bool {
        Rc::ptr_eq(&self.sets, &other.sets)
            || self.sets.iter().zip(other.sets.iter()).all(|(s, o)| {
                Rc::ptr_eq(s, o)
                    || s.iter()
                        .all(|(k, sc)| PersCache::get(o, *k).is_some_and(|oc| sc.subset_of(oc)))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg2way() -> CacheConfig {
        CacheConfig::new(1, 2, 16) // one 2-way set for easy reasoning
    }

    #[test]
    fn line_set_stays_sorted_across_spill() {
        let mut s = LineSet::default();
        // Fill beyond the inline capacity in a scrambled order.
        for &l in &[0x50u32, 0x10, 0x90, 0x30, 0x70, 0x20, 0x80, 0x40, 0x60, 0x00] {
            s.insert(l, (l >> 4) as u8);
        }
        let lines: Vec<u32> = s.iter().map(|(l, _)| l).collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted);
        assert_eq!(s.iter().count(), 10);
        assert_eq!(s.get(0x40), Some(4));
        // Equality ignores the representation (inline vs spill).
        let mut t = LineSet::default();
        for (l, a) in s.iter() {
            t.insert(l, a);
        }
        assert_eq!(s, t);
        // In-place retain keeps order and compacts.
        s.update_retain(|l, a| (l >= 0x50).then_some(a + 1));
        assert_eq!(s.iter().count(), 5);
        assert_eq!(s.get(0x50), Some(6));
        assert_eq!(s.get(0x40), None);
    }

    #[test]
    fn must_guarantees_after_access() {
        let mut m = MustCache::new(cfg2way());
        assert!(!m.definitely_cached(0x00));
        m.access(0x00);
        assert!(m.definitely_cached(0x00));
        m.access(0x10);
        assert!(m.definitely_cached(0x00) && m.definitely_cached(0x10));
        m.access(0x20); // evicts the oldest guarantee (0x00)
        assert!(!m.definitely_cached(0x00));
        assert!(m.definitely_cached(0x20));
    }

    #[test]
    fn must_join_is_intersection_with_max_age() {
        let mut a = MustCache::new(cfg2way());
        a.access(0x00); // age 0
        let mut b = MustCache::new(cfg2way());
        b.access(0x00);
        b.access(0x10); // 0x00 at age 1 in b
        let mut j = a.clone();
        assert!(j.join_from(&b));
        assert!(j.definitely_cached(0x00));
        assert!(!j.definitely_cached(0x10)); // only in b

        // Before the eviction test, a (age 0) refines j (age 1).
        assert!(a.le(&j));
        assert!(!j.le(&a));
        // One more access evicts 0x00 (its joined age is the max, 1).
        j.access(0x20);
        assert!(!j.definitely_cached(0x00));
    }

    #[test]
    fn may_absence_is_definite_miss() {
        let mut m = MayCache::new(cfg2way());
        assert!(!m.possibly_cached(0x00));
        m.access(0x00);
        m.access(0x10);
        m.access(0x20); // 0x00 has provable age 2 ≥ assoc → out
        assert!(!m.possibly_cached(0x00));
        assert!(m.possibly_cached(0x10) && m.possibly_cached(0x20));
    }

    #[test]
    fn may_join_is_union_with_min_age() {
        let mut a = MayCache::new(cfg2way());
        a.access(0x00);
        let mut b = MayCache::new(cfg2way());
        b.access(0x10);
        assert!(a.join_from(&b));
        assert!(a.possibly_cached(0x00) && a.possibly_cached(0x10));
    }

    #[test]
    fn may_clobber_makes_everything_possible() {
        let mut m = MayCache::new(cfg2way());
        m.clobber(None);
        assert!(m.possibly_cached(0xdead_beef & !0xf));
        // Further accesses keep it sound (still ⊤).
        m.access(0x40);
        assert!(m.possibly_cached(0x12340));
    }

    #[test]
    fn must_clobber_ages_everything() {
        let mut m = MustCache::new(cfg2way());
        m.access(0x00);
        m.access(0x10);
        m.clobber(None);
        // Previous MRU is now age 1; the other is evicted.
        assert!(m.definitely_cached(0x10));
        assert!(!m.definitely_cached(0x00));
    }

    #[test]
    fn persistence_survives_capacity_pressure_tracking() {
        let mut p = PersCache::new(cfg2way());
        p.access(0x00);
        p.access(0x10);
        assert!(p.persistent(0x00));
        p.access(0x20); // 0x00 saturates (may be evicted)
        assert!(!p.persistent(0x00));
        assert!(p.persistent(0x20) && p.persistent(0x10));
        // Re-access resets.
        p.access(0x00);
        assert!(p.persistent(0x00));
    }

    #[test]
    fn access_any_joins_possibilities() {
        let mut m = MustCache::new(cfg2way());
        m.access_any(&[0x00, 0x10]);
        // Neither line is guaranteed (the other may have been loaded).
        assert!(!m.definitely_cached(0x00));
        assert!(!m.definitely_cached(0x10));
        let mut may = MayCache::new(cfg2way());
        may.access_any(&[0x00, 0x10]);
        assert!(may.possibly_cached(0x00) && may.possibly_cached(0x10));
    }

    #[test]
    fn shared_sets_join_short_circuits() {
        let mut a = MustCache::new(cfg2way());
        a.access(0x00);
        let b = a.clone(); // shares the set vector
        assert!(!a.join_from(&b));
        assert!(a.le(&b) && b.le(&a));
        // Mutation after the clone un-shares without affecting `b`.
        a.access(0x10);
        assert!(a.definitely_cached(0x10));
        assert!(!b.definitely_cached(0x10));
    }

    #[test]
    fn pers_sets_accumulate_past_associativity() {
        // A persistence set never forgets lines, so it can exceed the
        // inline capacity; the spill must keep every saturated line.
        let cfg = CacheConfig::new(1, 2, 16);
        let mut p = PersCache::new(cfg);
        for i in 0..12u32 {
            p.access(i * 16);
        }
        // Every line is still recorded; all but the 2 youngest saturated.
        let persistent = (0..12u32).filter(|&i| p.persistent(i * 16)).count();
        assert_eq!(persistent, 2);
        let mut q = PersCache::new(cfg);
        q.access(0x00);
        assert!(q.join_from(&p));
        assert!(!q.persistent(0x40)); // saturated in p, absent in q → max
    }
}
