//! The must/may/persistence abstract cache domains.

use std::collections::BTreeMap;

use stamp_hw::CacheConfig;

/// One abstract cache set: a map from resident line address to an age
/// bound. `Top` (may analysis only) means "any line may be present at
/// any age".
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum SetState {
    Map(BTreeMap<u32, u8>),
    Top,
}

/// The **must** cache: ages are *upper* bounds valid in every execution.
/// Membership guarantees a hit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MustCache {
    config: CacheConfig,
    sets: Vec<BTreeMap<u32, u8>>,
}

impl MustCache {
    /// An empty must cache (nothing guaranteed).
    pub fn new(config: CacheConfig) -> MustCache {
        MustCache { config, sets: vec![BTreeMap::new(); config.sets() as usize] }
    }

    /// Returns `true` if the line containing `addr` hits in every
    /// execution.
    pub fn definitely_cached(&self, addr: u32) -> bool {
        let line = self.config.line_addr(addr);
        self.sets[self.config.set_index(addr) as usize].contains_key(&line)
    }

    /// Applies one access to the line containing `addr`
    /// (Ferdinand's must update).
    pub fn access(&mut self, addr: u32) {
        let a = self.config.assoc() as u8;
        let line = self.config.line_addr(addr);
        let set = &mut self.sets[self.config.set_index(addr) as usize];
        let z_age = set.get(&line).copied().unwrap_or(a);
        let keys: Vec<u32> = set.keys().copied().collect();
        for y in keys {
            if y == line {
                continue;
            }
            let age = set[&y];
            if age < z_age {
                if age + 1 >= a {
                    set.remove(&y);
                } else {
                    set.insert(y, age + 1);
                }
            }
        }
        set.insert(line, 0);
    }

    /// Applies an access whose line is only known to lie in `lines`
    /// (join over the possibilities).
    pub fn access_any(&mut self, lines: &[u32]) {
        match lines {
            [] => {}
            [one] => self.access(*one),
            _ => {
                let mut acc: Option<MustCache> = None;
                for &l in lines {
                    let mut c = self.clone();
                    c.access(l);
                    acc = Some(match acc {
                        None => c,
                        Some(mut p) => {
                            p.join_from(&c);
                            p
                        }
                    });
                }
                *self = acc.expect("non-empty lines");
            }
        }
    }

    /// Sound treatment of an access with an unbounded address set that
    /// may touch the given cache sets (`None` = all sets): every line
    /// ages as if displaced.
    pub fn clobber(&mut self, set_indices: Option<&[u32]>) {
        let a = self.config.assoc() as u8;
        let all: Vec<u32> = (0..self.config.sets()).collect();
        for &si in set_indices.unwrap_or(&all) {
            let set = &mut self.sets[si as usize];
            let keys: Vec<u32> = set.keys().copied().collect();
            for y in keys {
                let age = set[&y];
                if age + 1 >= a {
                    set.remove(&y);
                } else {
                    set.insert(y, age + 1);
                }
            }
        }
    }

    /// Lattice join (set intersection, maximum ages). Returns `true` if
    /// `self` changed.
    pub fn join_from(&mut self, other: &MustCache) -> bool {
        let mut changed = false;
        for (s, o) in self.sets.iter_mut().zip(other.sets.iter()) {
            let keys: Vec<u32> = s.keys().copied().collect();
            for k in keys {
                match o.get(&k) {
                    None => {
                        s.remove(&k);
                        changed = true;
                    }
                    Some(&oa) => {
                        let sa = s[&k];
                        if oa > sa {
                            s.insert(k, oa);
                            changed = true;
                        }
                    }
                }
            }
        }
        changed
    }

    /// Partial order: `self ⊑ other` iff `self` guarantees everything
    /// `other` does.
    pub fn le(&self, other: &MustCache) -> bool {
        self.sets.iter().zip(other.sets.iter()).all(|(s, o)| {
            o.iter().all(|(k, &oa)| s.get(k).is_some_and(|&sa| sa <= oa))
        })
    }
}

/// The **may** cache: ages are *lower* bounds over all executions in
/// which the line is cached. Absence guarantees a miss.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MayCache {
    config: CacheConfig,
    sets: Vec<SetState>,
}

impl MayCache {
    /// An empty may cache (everything is a guaranteed miss initially).
    pub fn new(config: CacheConfig) -> MayCache {
        MayCache {
            config,
            sets: vec![SetState::Map(BTreeMap::new()); config.sets() as usize],
        }
    }

    /// Returns `true` if the line containing `addr` may be cached.
    pub fn possibly_cached(&self, addr: u32) -> bool {
        let line = self.config.line_addr(addr);
        match &self.sets[self.config.set_index(addr) as usize] {
            SetState::Map(m) => m.contains_key(&line),
            SetState::Top => true,
        }
    }

    /// Applies one access (Ferdinand's may update).
    pub fn access(&mut self, addr: u32) {
        let a = self.config.assoc() as u8;
        let line = self.config.line_addr(addr);
        let set = &mut self.sets[self.config.set_index(addr) as usize];
        let m = match set {
            SetState::Map(m) => m,
            SetState::Top => return, // stays ⊤ (still sound)
        };
        let z_age = m.get(&line).copied().unwrap_or(a);
        let keys: Vec<u32> = m.keys().copied().collect();
        for y in keys {
            if y == line {
                continue;
            }
            let age = m[&y];
            // Ages are lower bounds: y provably ages only when it is
            // provably younger than z in every execution, i.e. when
            // its lower bound lies strictly below z's.
            if age < z_age {
                if age + 1 >= a {
                    m.remove(&y);
                } else {
                    m.insert(y, age + 1);
                }
            }
        }
        m.insert(line, 0);
    }

    /// Access with a small set of candidate lines: union of outcomes.
    pub fn access_any(&mut self, lines: &[u32]) {
        match lines {
            [] => {}
            [one] => self.access(*one),
            _ => {
                let mut acc: Option<MayCache> = None;
                for &l in lines {
                    let mut c = self.clone();
                    c.access(l);
                    acc = Some(match acc {
                        None => c,
                        Some(mut p) => {
                            p.join_from(&c);
                            p
                        }
                    });
                }
                *self = acc.expect("non-empty lines");
            }
        }
    }

    /// Unbounded access: the touched sets may afterwards contain anything.
    pub fn clobber(&mut self, set_indices: Option<&[u32]>) {
        let all: Vec<u32> = (0..self.config.sets()).collect();
        for &si in set_indices.unwrap_or(&all) {
            self.sets[si as usize] = SetState::Top;
        }
    }

    /// Lattice join (set union, minimum ages).
    pub fn join_from(&mut self, other: &MayCache) -> bool {
        let mut changed = false;
        for (s, o) in self.sets.iter_mut().zip(other.sets.iter()) {
            match (&mut *s, o) {
                (SetState::Top, _) => {}
                (slot, SetState::Top) => {
                    *slot = SetState::Top;
                    changed = true;
                }
                (SetState::Map(sm), SetState::Map(om)) => {
                    for (&k, &oa) in om {
                        match sm.get(&k) {
                            None => {
                                sm.insert(k, oa);
                                changed = true;
                            }
                            Some(&sa) if oa < sa => {
                                sm.insert(k, oa);
                                changed = true;
                            }
                            _ => {}
                        }
                    }
                }
            }
        }
        changed
    }

    /// Partial order: fewer possibilities ⊑ more possibilities.
    pub fn le(&self, other: &MayCache) -> bool {
        self.sets.iter().zip(other.sets.iter()).all(|(s, o)| match (s, o) {
            (_, SetState::Top) => true,
            (SetState::Top, SetState::Map(_)) => false,
            (SetState::Map(sm), SetState::Map(om)) => {
                sm.iter().all(|(k, &sa)| om.get(k).is_some_and(|&oa| oa <= sa))
            }
        })
    }
}

/// The **persistence** cache: like the must cache, but evicted lines
/// saturate at the associativity instead of disappearing, so "was loaded
/// and never evicted since" is visible.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PersCache {
    config: CacheConfig,
    sets: Vec<BTreeMap<u32, u8>>,
}

impl PersCache {
    /// An empty persistence cache.
    pub fn new(config: CacheConfig) -> PersCache {
        PersCache { config, sets: vec![BTreeMap::new(); config.sets() as usize] }
    }

    /// Returns `true` if the line was loaded before and has provably
    /// never been evicted (age bound below associativity).
    pub fn persistent(&self, addr: u32) -> bool {
        let line = self.config.line_addr(addr);
        self.sets[self.config.set_index(addr) as usize]
            .get(&line)
            .is_some_and(|&a| a < self.config.assoc() as u8)
    }

    /// Applies one access (must-style update with saturation).
    pub fn access(&mut self, addr: u32) {
        let a = self.config.assoc() as u8;
        let line = self.config.line_addr(addr);
        let set = &mut self.sets[self.config.set_index(addr) as usize];
        let z_age = set.get(&line).copied().unwrap_or(a);
        let keys: Vec<u32> = set.keys().copied().collect();
        for y in keys {
            if y == line {
                continue;
            }
            let age = set[&y];
            if age < z_age {
                set.insert(y, (age + 1).min(a));
            }
        }
        set.insert(line, 0);
    }

    /// Access with several candidate lines.
    pub fn access_any(&mut self, lines: &[u32]) {
        match lines {
            [] => {}
            [one] => self.access(*one),
            _ => {
                let mut acc: Option<PersCache> = None;
                for &l in lines {
                    let mut c = self.clone();
                    c.access(l);
                    acc = Some(match acc {
                        None => c,
                        Some(mut p) => {
                            p.join_from(&c);
                            p
                        }
                    });
                }
                *self = acc.expect("non-empty lines");
            }
        }
    }

    /// Unbounded access: saturate everything in the touched sets.
    pub fn clobber(&mut self, set_indices: Option<&[u32]>) {
        let a = self.config.assoc() as u8;
        let all: Vec<u32> = (0..self.config.sets()).collect();
        for &si in set_indices.unwrap_or(&all) {
            for (_, age) in self.sets[si as usize].iter_mut() {
                *age = a;
            }
        }
    }

    /// Lattice join (union, maximum ages — absence means "never loaded",
    /// which is *below* any recorded age).
    pub fn join_from(&mut self, other: &PersCache) -> bool {
        let mut changed = false;
        for (s, o) in self.sets.iter_mut().zip(other.sets.iter()) {
            for (&k, &oa) in o {
                match s.get(&k) {
                    None => {
                        s.insert(k, oa);
                        changed = true;
                    }
                    Some(&sa) if oa > sa => {
                        s.insert(k, oa);
                        changed = true;
                    }
                    _ => {}
                }
            }
        }
        changed
    }

    /// Partial order.
    pub fn le(&self, other: &PersCache) -> bool {
        self.sets.iter().zip(other.sets.iter()).all(|(s, o)| {
            s.iter().all(|(k, &sa)| o.get(k).is_some_and(|&oa| sa <= oa))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg2way() -> CacheConfig {
        CacheConfig::new(1, 2, 16) // one 2-way set for easy reasoning
    }

    #[test]
    fn must_guarantees_after_access() {
        let mut m = MustCache::new(cfg2way());
        assert!(!m.definitely_cached(0x00));
        m.access(0x00);
        assert!(m.definitely_cached(0x00));
        m.access(0x10);
        assert!(m.definitely_cached(0x00) && m.definitely_cached(0x10));
        m.access(0x20); // evicts the oldest guarantee (0x00)
        assert!(!m.definitely_cached(0x00));
        assert!(m.definitely_cached(0x20));
    }

    #[test]
    fn must_join_is_intersection_with_max_age() {
        let mut a = MustCache::new(cfg2way());
        a.access(0x00); // age 0
        let mut b = MustCache::new(cfg2way());
        b.access(0x00);
        b.access(0x10); // 0x00 at age 1 in b
        let mut j = a.clone();
        assert!(j.join_from(&b));
        assert!(j.definitely_cached(0x00));
        assert!(!j.definitely_cached(0x10)); // only in b
        // Before the eviction test, a (age 0) refines j (age 1).
        assert!(a.le(&j));
        assert!(!j.le(&a));
        // One more access evicts 0x00 (its joined age is the max, 1).
        j.access(0x20);
        assert!(!j.definitely_cached(0x00));
    }

    #[test]
    fn may_absence_is_definite_miss() {
        let mut m = MayCache::new(cfg2way());
        assert!(!m.possibly_cached(0x00));
        m.access(0x00);
        m.access(0x10);
        m.access(0x20); // 0x00 has provable age 2 ≥ assoc → out
        assert!(!m.possibly_cached(0x00));
        assert!(m.possibly_cached(0x10) && m.possibly_cached(0x20));
    }

    #[test]
    fn may_join_is_union_with_min_age() {
        let mut a = MayCache::new(cfg2way());
        a.access(0x00);
        let mut b = MayCache::new(cfg2way());
        b.access(0x10);
        assert!(a.join_from(&b));
        assert!(a.possibly_cached(0x00) && a.possibly_cached(0x10));
    }

    #[test]
    fn may_clobber_makes_everything_possible() {
        let mut m = MayCache::new(cfg2way());
        m.clobber(None);
        assert!(m.possibly_cached(0xdead_beef & !0xf));
        // Further accesses keep it sound (still ⊤).
        m.access(0x40);
        assert!(m.possibly_cached(0x12340));
    }

    #[test]
    fn must_clobber_ages_everything() {
        let mut m = MustCache::new(cfg2way());
        m.access(0x00);
        m.access(0x10);
        m.clobber(None);
        // Previous MRU is now age 1; the other is evicted.
        assert!(m.definitely_cached(0x10));
        assert!(!m.definitely_cached(0x00));
    }

    #[test]
    fn persistence_survives_capacity_pressure_tracking() {
        let mut p = PersCache::new(cfg2way());
        p.access(0x00);
        p.access(0x10);
        assert!(p.persistent(0x00));
        p.access(0x20); // 0x00 saturates (may be evicted)
        assert!(!p.persistent(0x00));
        assert!(p.persistent(0x20) && p.persistent(0x10));
        // Re-access resets.
        p.access(0x00);
        assert!(p.persistent(0x00));
    }

    #[test]
    fn access_any_joins_possibilities() {
        let mut m = MustCache::new(cfg2way());
        m.access_any(&[0x00, 0x10]);
        // Neither line is guaranteed (the other may have been loaded).
        assert!(!m.definitely_cached(0x00));
        assert!(!m.definitely_cached(0x10));
        let mut may = MayCache::new(cfg2way());
        may.access_any(&[0x00, 0x10]);
        assert!(may.possibly_cached(0x00) && may.possibly_cached(0x10));
    }
}
