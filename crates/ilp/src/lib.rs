//! # stamp-ilp — an exact integer linear programming solver
//!
//! The paper's path analysis combines abstract interpretation results
//! "with ILP (Integer Linear Programming) techniques to safely predict
//! the worst-case execution time and a corresponding worst-case execution
//! path". Commercial tools delegate to an external LP solver; this crate
//! implements the substrate from scratch:
//!
//! * exact rational arithmetic ([`Rat`]) — no floating-point drift in a
//!   verification tool;
//! * a two-phase primal simplex with Bland's rule ([`LpProblem::maximize`]);
//! * branch & bound for integrality ([`LpProblem::maximize_integer`]).
//!
//! IPET instances are network-flow-like and almost always have integral
//! LP relaxations, so branch & bound rarely branches — but it is there,
//! exact, and tested against brute force.
//!
//! # Example
//!
//! ```
//! use stamp_ilp::{CmpOp, LpProblem};
//!
//! # fn main() -> Result<(), stamp_ilp::IlpError> {
//! // maximize 3x + 2y  s.t.  x + y ≤ 4, x ≤ 2, integers ≥ 0
//! let mut lp = LpProblem::new();
//! let x = lp.add_var("x", 3);
//! let y = lp.add_var("y", 2);
//! lp.add_constraint([(x, 1), (y, 1)], CmpOp::Le, 4);
//! lp.add_constraint([(x, 1)], CmpOp::Le, 2);
//! let sol = lp.maximize_integer()?;
//! assert_eq!(sol.objective, 10); // x = 2, y = 2
//! assert_eq!(sol.values, vec![2, 2]);
//! # Ok(())
//! # }
//! ```

mod model;
mod rational;
mod simplex;

pub use model::{CmpOp, IlpError, IlpSolution, LpProblem, LpSolution, VarId};
pub use rational::Rat;
