//! Two-phase primal simplex on exact rationals.

use crate::model::IlpError;
use crate::rational::Rat;

/// A standard-form LP: maximize `c·x` s.t. `A x = b`, `x ≥ 0`, `b ≥ 0`,
/// where artificial variables have already been appended by the caller.
pub(crate) struct Standard {
    /// Constraint matrix, one row per constraint.
    pub a: Vec<Vec<Rat>>,
    /// Right-hand side (non-negative).
    pub b: Vec<Rat>,
    /// Objective coefficients (length = total columns).
    pub c: Vec<Rat>,
    /// Columns that are artificial variables (for phase 1).
    pub artificials: Vec<usize>,
    /// Initial basis: one basic column per row.
    pub basis: Vec<usize>,
}

pub(crate) struct SimplexResult {
    pub objective: Rat,
    /// Value per column.
    pub values: Vec<Rat>,
}

/// Runs two-phase simplex.
pub(crate) fn solve(mut s: Standard) -> Result<SimplexResult, IlpError> {
    let cols = s.c.len();
    let rows = s.a.len();
    debug_assert!(s.basis.len() == rows);

    // ----- Phase 1: minimize sum of artificials (maximize the negation).
    if !s.artificials.is_empty() {
        let mut c1 = vec![Rat::ZERO; cols];
        for &j in &s.artificials {
            c1[j] = -Rat::ONE;
        }
        let obj = run(&mut s.a, &mut s.b, &c1, &mut s.basis)?;
        if obj < Rat::ZERO {
            return Err(IlpError::Infeasible);
        }
        // Drive any artificial still in the basis out (degenerate case):
        // pivot on any non-artificial column with a nonzero entry.
        for r in 0..rows {
            let bc = s.basis[r];
            if s.artificials.contains(&bc) {
                let pivot_col =
                    (0..cols).find(|j| !s.artificials.contains(j) && !s.a[r][*j].is_zero());
                if let Some(j) = pivot_col {
                    pivot(&mut s.a, &mut s.b, r, j);
                    s.basis[r] = j;
                }
                // If the whole row is zero it is redundant; leave it.
            }
        }
        // Remove artificial columns from consideration in phase 2 by
        // forcing their objective coefficients to stay zero and never
        // selecting them (they are zeroed below).
        for &j in &s.artificials {
            for row in s.a.iter_mut() {
                row[j] = Rat::ZERO;
            }
        }
    }

    // ----- Phase 2: maximize the real objective.
    let objective = run(&mut s.a, &mut s.b, &s.c, &mut s.basis)?;
    let mut values = vec![Rat::ZERO; cols];
    for (r, &bc) in s.basis.iter().enumerate() {
        values[bc] = s.b[r];
    }
    Ok(SimplexResult { objective, values })
}

/// Primal simplex iterations with Bland's rule. Returns the objective
/// value; `a`, `b`, `basis` are updated in place.
///
/// The reduced-cost row `r = c − c_B·B⁻¹A` is computed once on entry
/// and then maintained through every pivot exactly like a tableau row
/// (Gauss-Jordan on the extended tableau). With exact rationals the
/// maintained row equals the from-scratch value, so the entering-column
/// choice — and therefore the whole pivot sequence and optimum — is
/// identical to recomputation, at O(cols) instead of O(rows·cols) per
/// iteration; basic columns carry an exact reduced cost of zero and need
/// no membership test.
fn run(a: &mut [Vec<Rat>], b: &mut [Rat], c: &[Rat], basis: &mut [usize]) -> Result<Rat, IlpError> {
    let rows = a.len();
    let cols = c.len();
    let mut rc: Vec<Rat> = c.to_vec();
    for r in 0..rows {
        let cb = c[basis[r]];
        if cb.is_zero() {
            continue;
        }
        for (dst, &v) in rc.iter_mut().zip(a[r].iter()) {
            if !v.is_zero() {
                *dst = *dst - cb * v;
            }
        }
    }
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        if iterations > 50_000 {
            return Err(IlpError::IterationLimit);
        }
        // Bland's rule: entering column = smallest j with r_j > 0.
        let Some(j) = (0..cols).find(|&j| rc[j].is_positive()) else {
            // Optimal: objective = c_B · b.
            let mut obj = Rat::ZERO;
            for r in 0..rows {
                obj = obj + c[basis[r]] * b[r];
            }
            return Ok(obj);
        };
        // Ratio test (Bland: smallest basis index on ties).
        let mut leave: Option<(usize, Rat)> = None;
        for r in 0..rows {
            if a[r][j].is_positive() {
                let ratio = b[r] / a[r][j];
                let better = match &leave {
                    None => true,
                    Some((lr, lratio)) => {
                        ratio < *lratio || (ratio == *lratio && basis[r] < basis[*lr])
                    }
                };
                if better {
                    leave = Some((r, ratio));
                }
            }
        }
        let Some((r, _)) = leave else {
            return Err(IlpError::Unbounded);
        };
        pivot(a, b, r, j);
        // Eliminate the entering column from the cost row like any other
        // tableau row (a[r] now holds the normalized pivot row).
        let f = rc[j];
        if !f.is_zero() {
            for (dst, &pv) in rc.iter_mut().zip(a[r].iter()) {
                if !pv.is_zero() {
                    *dst = *dst - pv * f;
                }
            }
        }
        basis[r] = j;
    }
}

/// Gauss-Jordan pivot on `(row, col)`. Zero entries of the pivot row are
/// skipped — IPET tableaus are sparse, and subtracting an exact zero is
/// the identity.
fn pivot(a: &mut [Vec<Rat>], b: &mut [Rat], row: usize, col: usize) {
    let p = a[row][col];
    debug_assert!(!p.is_zero());
    for v in a[row].iter_mut() {
        if !v.is_zero() {
            *v = *v / p;
        }
    }
    b[row] = b[row] / p;
    let (prow, brow) = {
        let prow = std::mem::take(&mut a[row]);
        (prow, b[row])
    };
    for (r, arow) in a.iter_mut().enumerate() {
        if r == row {
            continue;
        }
        let f = arow[col];
        if f.is_zero() {
            continue;
        }
        for (dst, &pv) in arow.iter_mut().zip(&prow) {
            if !pv.is_zero() {
                *dst = *dst - pv * f;
            }
        }
        b[r] = b[r] - brow * f;
    }
    a[row] = prow;
}
