//! Exact rational arithmetic on `i128`.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// An exact rational number with a positive denominator, always reduced.
///
/// Arithmetic panics on overflow of `i128` — with IPET-sized inputs
/// (cycle counts and loop bounds well below 2⁶⁴) intermediate values stay
/// far from the limit because every operation re-normalizes.
///
/// # Example
///
/// ```
/// use stamp_ilp::Rat;
///
/// let a = Rat::new(1, 3) + Rat::new(1, 6);
/// assert_eq!(a, Rat::new(1, 2));
/// assert_eq!(a.floor(), 0);
/// assert!(!a.is_integer());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rat {
    num: i128,
    den: i128,
}

fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rat {
    /// Zero.
    pub const ZERO: Rat = Rat { num: 0, den: 1 };
    /// One.
    pub const ONE: Rat = Rat { num: 1, den: 1 };

    /// Creates `num/den`, reduced.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Rat {
        assert!(den != 0, "zero denominator");
        let g = gcd(num, den).max(1);
        let sign = if den < 0 { -1 } else { 1 };
        Rat { num: sign * num / g, den: sign * den / g }
    }

    /// An integer as a rational.
    pub fn int(v: i128) -> Rat {
        Rat { num: v, den: 1 }
    }

    /// The numerator (after reduction).
    pub fn numer(self) -> i128 {
        self.num
    }

    /// The denominator (positive).
    pub fn denom(self) -> i128 {
        self.den
    }

    /// Returns `true` for whole numbers.
    pub fn is_integer(self) -> bool {
        self.den == 1
    }

    /// Largest integer ≤ self.
    pub fn floor(self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// Smallest integer ≥ self.
    pub fn ceil(self) -> i128 {
        -((-self.num).div_euclid(self.den))
    }

    /// Returns `true` if negative.
    pub fn is_negative(self) -> bool {
        self.num < 0
    }

    /// Returns `true` if strictly positive.
    pub fn is_positive(self) -> bool {
        self.num > 0
    }

    /// Returns `true` if zero.
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// Approximate `f64` value (for reports only; never used in pivots).
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }
}

impl Add for Rat {
    type Output = Rat;
    fn add(self, o: Rat) -> Rat {
        // Integer fast path: simplex tableaus start integral and mostly
        // stay so; skipping the gcd machinery there is a large win.
        if self.den == 1 && o.den == 1 {
            return Rat { num: self.num + o.num, den: 1 };
        }
        let g = gcd(self.den, o.den).max(1);
        let l = self.den / g * o.den;
        Rat::new(self.num * (l / self.den) + o.num * (l / o.den), l)
    }
}

impl Sub for Rat {
    type Output = Rat;
    fn sub(self, o: Rat) -> Rat {
        self + (-o)
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat { num: -self.num, den: self.den }
    }
}

impl Mul for Rat {
    type Output = Rat;
    fn mul(self, o: Rat) -> Rat {
        if self.num == 0 || o.num == 0 {
            return Rat::ZERO;
        }
        if self.den == 1 && o.den == 1 {
            return Rat { num: self.num * o.num, den: 1 };
        }
        // Cross-reduce before multiplying to keep magnitudes small.
        let g1 = gcd(self.num, o.den).max(1);
        let g2 = gcd(o.num, self.den).max(1);
        Rat::new((self.num / g1) * (o.num / g2), (self.den / g2) * (o.den / g1))
    }
}

impl Div for Rat {
    type Output = Rat;
    /// # Panics
    ///
    /// Panics on division by zero.
    fn div(self, o: Rat) -> Rat {
        assert!(o.num != 0, "division by zero rational");
        self * Rat { num: o.den, den: o.num }
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, o: &Rat) -> Option<Ordering> {
        Some(self.cmp(o))
    }
}

impl Ord for Rat {
    fn cmp(&self, o: &Rat) -> Ordering {
        if self.den == o.den {
            // Denominators are always positive, so numerators compare
            // directly (covers the common integer-vs-integer case).
            return self.num.cmp(&o.num);
        }
        (self.num * o.den).cmp(&(o.num * self.den))
    }
}

impl fmt::Debug for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl From<i64> for Rat {
    fn from(v: i64) -> Rat {
        Rat::int(v as i128)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_reduces() {
        assert_eq!(Rat::new(2, 4), Rat::new(1, 2));
        assert_eq!(Rat::new(1, -2), Rat::new(-1, 2));
        assert_eq!(Rat::new(1, 3) + Rat::new(1, 6), Rat::new(1, 2));
        assert_eq!(Rat::new(1, 2) * Rat::new(2, 3), Rat::new(1, 3));
        assert_eq!(Rat::new(1, 2) / Rat::new(1, 4), Rat::int(2));
        assert_eq!(Rat::new(3, 2) - Rat::new(1, 2), Rat::ONE);
    }

    #[test]
    fn floor_and_ceil_handle_negatives() {
        assert_eq!(Rat::new(-3, 2).floor(), -2);
        assert_eq!(Rat::new(-3, 2).ceil(), -1);
        assert_eq!(Rat::new(3, 2).floor(), 1);
        assert_eq!(Rat::new(3, 2).ceil(), 2);
        assert_eq!(Rat::int(5).floor(), 5);
    }

    #[test]
    fn ordering() {
        assert!(Rat::new(1, 3) < Rat::new(1, 2));
        assert!(Rat::new(-1, 2) < Rat::ZERO);
        assert!(Rat::int(2) > Rat::new(5, 3));
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rat::new(1, 0);
    }
}
