//! The LP/ILP modeling API and branch & bound.

use std::error::Error;
use std::fmt;

use crate::rational::Rat;
use crate::simplex::{self, Standard};

/// A decision variable handle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub usize);

/// Comparison operator of a linear constraint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `≤`
    Le,
    /// `=`
    Eq,
    /// `≥`
    Ge,
}

/// Errors from the solvers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IlpError {
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded above (for IPET: a loop without a
    /// bound constraint).
    Unbounded,
    /// The simplex iteration safety limit was hit.
    IterationLimit,
    /// Branch & bound explored too many nodes.
    NodeLimit,
}

impl fmt::Display for IlpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IlpError::Infeasible => f.write_str("problem is infeasible"),
            IlpError::Unbounded => f.write_str("objective is unbounded"),
            IlpError::IterationLimit => f.write_str("simplex iteration limit exceeded"),
            IlpError::NodeLimit => f.write_str("branch-and-bound node limit exceeded"),
        }
    }
}

impl Error for IlpError {}

#[derive(Clone, Debug)]
struct Constraint {
    terms: Vec<(VarId, i64)>,
    op: CmpOp,
    rhs: i64,
}

/// The solution of an LP relaxation.
#[derive(Clone, Debug)]
pub struct LpSolution {
    /// Optimal objective value.
    pub objective: Rat,
    /// Value of each variable, indexed by [`VarId`].
    pub values: Vec<Rat>,
}

/// The solution of an integer program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IlpSolution {
    /// Optimal objective value.
    pub objective: i64,
    /// Value of each variable, indexed by [`VarId`].
    pub values: Vec<i64>,
}

/// A linear program: non-negative variables, linear constraints, and a
/// linear objective to maximize. See the crate documentation for an
/// example.
#[derive(Clone, Debug, Default)]
pub struct LpProblem {
    names: Vec<String>,
    objective: Vec<i64>,
    constraints: Vec<Constraint>,
}

impl LpProblem {
    /// Creates an empty problem.
    pub fn new() -> LpProblem {
        LpProblem::default()
    }

    /// Adds a variable `x ≥ 0` with the given objective coefficient.
    pub fn add_var(&mut self, name: impl Into<String>, objective: i64) -> VarId {
        self.names.push(name.into());
        self.objective.push(objective);
        VarId(self.names.len() - 1)
    }

    /// Adds the constraint `Σ coeff·var op rhs`.
    pub fn add_constraint(
        &mut self,
        terms: impl IntoIterator<Item = (VarId, i64)>,
        op: CmpOp,
        rhs: i64,
    ) {
        self.constraints.push(Constraint { terms: terms.into_iter().collect(), op, rhs });
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.names.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// The name of a variable.
    pub fn name(&self, v: VarId) -> &str {
        &self.names[v.0]
    }

    /// Solves the LP relaxation.
    ///
    /// # Errors
    ///
    /// [`IlpError::Infeasible`] / [`IlpError::Unbounded`] as appropriate.
    pub fn maximize(&self) -> Result<LpSolution, IlpError> {
        self.maximize_with(&[])
    }

    /// Solves the relaxation with extra temporary constraints (used by
    /// branch & bound).
    fn maximize_with(&self, extra: &[Constraint]) -> Result<LpSolution, IlpError> {
        let n = self.num_vars();
        let all: Vec<&Constraint> = self.constraints.iter().chain(extra.iter()).collect();
        let rows = all.len();

        // Count slack/artificial columns.
        let mut num_slack = 0;
        let mut num_art = 0;
        for c in &all {
            match (c.op, c.rhs >= 0) {
                (CmpOp::Le, true) => num_slack += 1,
                (CmpOp::Le, false) => {
                    // −terms ≥ −rhs: surplus + artificial.
                    num_slack += 1;
                    num_art += 1;
                }
                (CmpOp::Ge, true) => {
                    num_slack += 1;
                    num_art += 1;
                }
                (CmpOp::Ge, false) => num_slack += 1, // becomes ≤ with b ≥ 0
                (CmpOp::Eq, _) => num_art += 1,
            }
        }
        let cols = n + num_slack + num_art;
        let mut a = vec![vec![Rat::ZERO; cols]; rows];
        let mut b = vec![Rat::ZERO; rows];
        let mut c_obj = vec![Rat::ZERO; cols];
        for (j, &cj) in self.objective.iter().enumerate() {
            c_obj[j] = Rat::int(cj as i128);
        }
        let mut basis = vec![usize::MAX; rows];
        let mut artificials = Vec::new();
        let mut next_slack = n;
        let mut next_art = n + num_slack;

        for (r, cons) in all.iter().enumerate() {
            // Normalize to b ≥ 0.
            let flip = cons.rhs < 0;
            let sign: i128 = if flip { -1 } else { 1 };
            for &(v, coeff) in &cons.terms {
                a[r][v.0] = a[r][v.0] + Rat::int(sign * coeff as i128);
            }
            b[r] = Rat::int(sign * cons.rhs as i128);
            let effective_op = match (cons.op, flip) {
                (CmpOp::Le, false) | (CmpOp::Ge, true) => CmpOp::Le,
                (CmpOp::Ge, false) | (CmpOp::Le, true) => CmpOp::Ge,
                (CmpOp::Eq, _) => CmpOp::Eq,
            };
            match effective_op {
                CmpOp::Le => {
                    a[r][next_slack] = Rat::ONE;
                    basis[r] = next_slack;
                    next_slack += 1;
                }
                CmpOp::Ge => {
                    a[r][next_slack] = -Rat::ONE;
                    next_slack += 1;
                    a[r][next_art] = Rat::ONE;
                    basis[r] = next_art;
                    artificials.push(next_art);
                    next_art += 1;
                }
                CmpOp::Eq => {
                    a[r][next_art] = Rat::ONE;
                    basis[r] = next_art;
                    artificials.push(next_art);
                    next_art += 1;
                }
            }
        }

        let res = simplex::solve(Standard { a, b, c: c_obj, artificials, basis })?;
        Ok(LpSolution { objective: res.objective, values: res.values[..n].to_vec() })
    }

    /// Solves the integer program by branch & bound on the exact LP
    /// relaxation.
    ///
    /// # Errors
    ///
    /// [`IlpError::Infeasible`] when no integer point exists,
    /// [`IlpError::Unbounded`] when the relaxation is unbounded,
    /// [`IlpError::NodeLimit`] after 100 000 nodes.
    pub fn maximize_integer(&self) -> Result<IlpSolution, IlpError> {
        let mut best: Option<IlpSolution> = None;
        let mut stack: Vec<Vec<Constraint>> = vec![Vec::new()];
        let mut nodes = 0usize;

        while let Some(extra) = stack.pop() {
            nodes += 1;
            if nodes > 100_000 {
                return Err(IlpError::NodeLimit);
            }
            let sol = match self.maximize_with(&extra) {
                Ok(s) => s,
                Err(IlpError::Infeasible) => continue,
                Err(e) => return Err(e),
            };
            // Prune by bound.
            if let Some(b) = &best {
                if sol.objective <= Rat::int(b.objective as i128) {
                    continue;
                }
            }
            // Find a fractional variable.
            match sol.values.iter().position(|v| !v.is_integer()) {
                None => {
                    let values: Vec<i64> = sol.values.iter().map(|v| v.numer() as i64).collect();
                    let objective = sol.objective.numer() as i64;
                    if best.as_ref().is_none_or(|b| objective > b.objective) {
                        best = Some(IlpSolution { objective, values });
                    }
                }
                Some(j) => {
                    let v = sol.values[j];
                    let mut lo = extra.clone();
                    lo.push(Constraint {
                        terms: vec![(VarId(j), 1)],
                        op: CmpOp::Le,
                        rhs: v.floor() as i64,
                    });
                    let mut hi = extra;
                    hi.push(Constraint {
                        terms: vec![(VarId(j), 1)],
                        op: CmpOp::Ge,
                        rhs: v.ceil() as i64,
                    });
                    stack.push(lo);
                    stack.push(hi);
                }
            }
        }
        best.ok_or(IlpError::Infeasible)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_lp() {
        // maximize 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18.
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", 3);
        let y = lp.add_var("y", 5);
        lp.add_constraint([(x, 1)], CmpOp::Le, 4);
        lp.add_constraint([(y, 2)], CmpOp::Le, 12);
        lp.add_constraint([(x, 3), (y, 2)], CmpOp::Le, 18);
        let sol = lp.maximize().unwrap();
        assert_eq!(sol.objective, Rat::int(36)); // x=2, y=6
        assert_eq!(sol.values[x.0], Rat::int(2));
        assert_eq!(sol.values[y.0], Rat::int(6));
    }

    #[test]
    fn equality_and_ge_constraints() {
        // maximize x + y s.t. x + y = 5, x ≥ 2 → objective 5.
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", 1);
        let y = lp.add_var("y", 1);
        lp.add_constraint([(x, 1), (y, 1)], CmpOp::Eq, 5);
        lp.add_constraint([(x, 1)], CmpOp::Ge, 2);
        let sol = lp.maximize().unwrap();
        assert_eq!(sol.objective, Rat::int(5));
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", 1);
        lp.add_constraint([(x, 1)], CmpOp::Ge, 5);
        lp.add_constraint([(x, 1)], CmpOp::Le, 3);
        assert_eq!(lp.maximize().unwrap_err(), IlpError::Infeasible);
        assert_eq!(lp.maximize_integer().unwrap_err(), IlpError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", 1);
        lp.add_constraint([(x, -1)], CmpOp::Le, 0); // x ≥ 0, no upper bound
        assert_eq!(lp.maximize().unwrap_err(), IlpError::Unbounded);
    }

    #[test]
    fn branch_and_bound_beats_fractional_relaxation() {
        // maximize x + y s.t. 2x + 2y ≤ 5 → LP gives 2.5, ILP gives 2.
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", 1);
        let y = lp.add_var("y", 1);
        lp.add_constraint([(x, 2), (y, 2)], CmpOp::Le, 5);
        let relax = lp.maximize().unwrap();
        assert_eq!(relax.objective, Rat::new(5, 2));
        let int = lp.maximize_integer().unwrap();
        assert_eq!(int.objective, 2);
    }

    #[test]
    fn knapsack_instance() {
        // maximize 10a + 6b + 4c s.t. a+b+c ≤ 100, 10a+4b+5c ≤ 600,
        // 2a+2b+6c ≤ 300 (classic): optimal LP 733⅓; ILP 732.
        let mut lp = LpProblem::new();
        let a = lp.add_var("a", 10);
        let b = lp.add_var("b", 6);
        let c = lp.add_var("c", 4);
        lp.add_constraint([(a, 1), (b, 1), (c, 1)], CmpOp::Le, 100);
        lp.add_constraint([(a, 10), (b, 4), (c, 5)], CmpOp::Le, 600);
        lp.add_constraint([(a, 2), (b, 2), (c, 6)], CmpOp::Le, 300);
        let relax = lp.maximize().unwrap();
        assert_eq!(relax.objective, Rat::new(2200, 3));
        let int = lp.maximize_integer().unwrap();
        assert_eq!(int.objective, 732);
    }

    #[test]
    fn degenerate_equalities() {
        // x = 0 forced; maximize x + y with y ≤ 3.
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", 1);
        let y = lp.add_var("y", 1);
        lp.add_constraint([(x, 1)], CmpOp::Eq, 0);
        lp.add_constraint([(y, 1)], CmpOp::Le, 3);
        let sol = lp.maximize_integer().unwrap();
        assert_eq!(sol.objective, 3);
        assert_eq!(sol.values, vec![0, 3]);
    }

    #[test]
    fn negative_rhs_normalized() {
        // x − y ≤ −2 with x,y ≥ 0 and x + y ≤ 10: maximize x → x = 4, y = 6.
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", 1);
        let y = lp.add_var("y", 0);
        lp.add_constraint([(x, 1), (y, -1)], CmpOp::Le, -2);
        lp.add_constraint([(x, 1), (y, 1)], CmpOp::Le, 10);
        let sol = lp.maximize().unwrap();
        assert_eq!(sol.objective, Rat::int(4));
    }

    /// Brute-force check of B&B on small random-ish instances.
    #[test]
    fn bb_matches_brute_force() {
        type Case = (Vec<i64>, Vec<(Vec<i64>, i64)>);
        let cases: Vec<Case> = vec![
            (vec![3, 4], vec![(vec![1, 2], 7), (vec![3, 1], 9)]),
            (vec![5, 1, 2], vec![(vec![2, 1, 1], 8), (vec![1, 3, 1], 7)]),
            (vec![1, 1, 1], vec![(vec![1, 1, 1], 4)]),
            (vec![7, 2], vec![(vec![5, 1], 11), (vec![1, 1], 6)]),
        ];
        for (obj, cons) in cases {
            let mut lp = LpProblem::new();
            let vars: Vec<VarId> =
                obj.iter().enumerate().map(|(i, &c)| lp.add_var(format!("x{i}"), c)).collect();
            for (coeffs, rhs) in &cons {
                let terms: Vec<(VarId, i64)> =
                    vars.iter().zip(coeffs.iter()).map(|(&v, &c)| (v, c)).collect();
                lp.add_constraint(terms, CmpOp::Le, *rhs);
            }
            let got = lp.maximize_integer().unwrap().objective;
            // Brute force over a box.
            let mut best = i64::MIN;
            let n = obj.len();
            let mut x = vec![0i64; n];
            'outer: loop {
                let feasible = cons.iter().all(|(coeffs, rhs)| {
                    coeffs.iter().zip(x.iter()).map(|(c, v)| c * v).sum::<i64>() <= *rhs
                });
                if feasible {
                    let val = obj.iter().zip(x.iter()).map(|(c, v)| c * v).sum::<i64>();
                    best = best.max(val);
                }
                // Next point in the box [0, 20]^n.
                for digit in x.iter_mut() {
                    *digit += 1;
                    if *digit <= 20 {
                        continue 'outer;
                    }
                    *digit = 0;
                }
                break;
            }
            assert_eq!(got, best, "obj {obj:?} cons {cons:?}");
        }
    }
}
