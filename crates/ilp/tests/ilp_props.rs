//! Property-based validation of the exact ILP solver against brute-force
//! enumeration on small random instances.

use proptest::prelude::*;
use stamp_ilp::{CmpOp, IlpError, LpProblem, Rat, VarId};

#[derive(Debug, Clone)]
struct SmallIlp {
    objective: Vec<i64>,
    /// Each constraint: coefficients + rhs, as `Σ c·x ≤ rhs`.
    le_constraints: Vec<(Vec<i64>, i64)>,
}

fn small_ilp() -> impl Strategy<Value = SmallIlp> {
    (2usize..=3)
        .prop_flat_map(|nvars| {
            let objective = prop::collection::vec(0i64..8, nvars);
            let cons =
                prop::collection::vec((prop::collection::vec(0i64..5, nvars), 1i64..25), 1..=3);
            (objective, cons)
        })
        .prop_map(|(objective, le_constraints)| SmallIlp { objective, le_constraints })
        .prop_filter("bounded", |ilp| {
            // Every variable with positive objective must appear with a
            // positive coefficient somewhere, else unbounded.
            (0..ilp.objective.len())
                .all(|j| ilp.objective[j] == 0 || ilp.le_constraints.iter().any(|(c, _)| c[j] > 0))
        })
}

fn brute_force(ilp: &SmallIlp) -> i64 {
    let n = ilp.objective.len();
    let mut best = i64::MIN;
    let mut x = vec![0i64; n];
    'outer: loop {
        let feasible = ilp
            .le_constraints
            .iter()
            .all(|(c, rhs)| c.iter().zip(&x).map(|(a, b)| a * b).sum::<i64>() <= *rhs);
        if feasible {
            best = best.max(ilp.objective.iter().zip(&x).map(|(a, b)| a * b).sum());
        }
        for digit in x.iter_mut() {
            *digit += 1;
            if *digit <= 25 {
                continue 'outer;
            }
            *digit = 0;
        }
        break;
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ilp_matches_brute_force(ilp in small_ilp()) {
        let mut lp = LpProblem::new();
        let vars: Vec<VarId> = ilp
            .objective
            .iter()
            .enumerate()
            .map(|(i, &c)| lp.add_var(format!("x{i}"), c))
            .collect();
        for (coeffs, rhs) in &ilp.le_constraints {
            let terms: Vec<(VarId, i64)> =
                vars.iter().zip(coeffs).map(|(&v, &c)| (v, c)).collect();
            lp.add_constraint(terms, CmpOp::Le, *rhs);
        }
        match lp.maximize_integer() {
            Ok(sol) => {
                let expect = brute_force(&ilp);
                prop_assert_eq!(sol.objective, expect, "{:?}", ilp);
                // The witness must be feasible and achieve the objective.
                let val: i64 = ilp
                    .objective
                    .iter()
                    .zip(&sol.values)
                    .map(|(c, v)| c * v)
                    .sum();
                prop_assert_eq!(val, sol.objective);
                for (coeffs, rhs) in &ilp.le_constraints {
                    let lhs: i64 =
                        coeffs.iter().zip(&sol.values).map(|(c, v)| c * v).sum();
                    prop_assert!(lhs <= *rhs);
                }
            }
            Err(IlpError::Unbounded) => {
                // Allowed only if brute force hit the box edge going up —
                // our generator filters these, so treat as failure.
                prop_assert!(false, "unexpected unbounded: {:?}", ilp);
            }
            Err(e) => prop_assert!(false, "solver error {e}: {ilp:?}"),
        }
    }

    #[test]
    fn lp_relaxation_dominates_ilp(ilp in small_ilp()) {
        let mut lp = LpProblem::new();
        let vars: Vec<VarId> = ilp
            .objective
            .iter()
            .enumerate()
            .map(|(i, &c)| lp.add_var(format!("x{i}"), c))
            .collect();
        for (coeffs, rhs) in &ilp.le_constraints {
            let terms: Vec<(VarId, i64)> =
                vars.iter().zip(coeffs).map(|(&v, &c)| (v, c)).collect();
            lp.add_constraint(terms, CmpOp::Le, *rhs);
        }
        if let (Ok(relax), Ok(int)) = (lp.maximize(), lp.maximize_integer()) {
            prop_assert!(
                relax.objective >= Rat::int(int.objective as i128),
                "relaxation {} below integer optimum {}",
                relax.objective,
                int.objective
            );
        }
    }
}
