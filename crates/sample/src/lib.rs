//! # stamp-sample — probabilistic path sampling
//!
//! The second path-analysis backend, beside the ILP of `stamp-path`:
//! instead of *maximizing* over all feasible paths, draw N random paths
//! through the interprocedural supergraph, cost each one with the same
//! pipeline/cache model the ILP objective uses, and report the observed
//! distribution (max, mean, percentiles) of whole-program execution
//! times *under* the sound ILP bound.
//!
//! # Weighting
//!
//! A walk starts at the supergraph entry and repeatedly draws one
//! outgoing edge until it reaches a task exit (or gets stuck). Edges
//! are drawn with loop-bound-derived weights: a loop back edge is
//! weighted by the iterations its loop instance may still execute
//! (`(bound − 1) · entries − backs`, the slack of the ILP's loop
//! constraint), every other edge by 1 — so loops are sampled near
//! their bounds and the distribution concentrates toward the worst
//! case instead of exiting every loop after ~one iteration.
//!
//! # Soundness (why `observed_max ≤ WCET` always)
//!
//! Every sampled path is, by construction, a feasible point of the
//! ILP that produced the WCET bound:
//!
//! * it is one source→sink flow, so flow conservation holds;
//! * a back edge is only taken while `backs + 1 ≤ (bound−1) · entries`
//!   for its loop instance — instances are keyed exactly as in
//!   `stamp-path` (header block, target context with the loop's own
//!   trailing frame stripped);
//! * edges the ILP pins to zero are never traversed: value-analysis
//!   infeasible edges (when `use_infeasible` is on, matching
//!   [`PathOptions::use_infeasible`]) and the edges of unbounded
//!   never-entered loop instances;
//! * its cost is the ILP objective evaluated at that point: entry node
//!   time, plus `time(target) + edge_penalty` per traversed edge, plus
//!   the same `ps_extra_cycles()` term.
//!
//! The WCET is the maximum of the objective over all feasible points,
//! so each sampled cost — and hence the observed maximum — is `≤ WCET`.
//! The differential fuzzer checks exactly this invariant on every
//! generated program.
//!
//! [`PathOptions::use_infeasible`]: https://docs.rs/stamp_path

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stamp_ai::{Frame, IEdgeKind, Icfg, NodeId};
use stamp_cfg::{BlockId, Cfg};
use stamp_loopbound::LoopBoundAnalysis;
use stamp_pipeline::PipelineAnalysis;
use stamp_value::ValueAnalysis;

/// Options for [`sample_paths`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SampleOptions {
    /// Number of path walks to draw.
    pub samples: usize,
    /// Seed of the walk rng. Same seed, same artifacts → bit-identical
    /// [`SampleSummary`], whatever the worker count.
    pub seed: u64,
    /// Avoid value-analysis-infeasible edges, matching the ILP's
    /// `use_infeasible` (the E4 ablation switch must flip both sides).
    pub use_infeasible: bool,
    /// Safety cap on steps per walk; a capped walk counts as a dead
    /// end. Loop budgets already force termination — this only guards
    /// against pathological inputs.
    pub max_steps: usize,
}

impl Default for SampleOptions {
    fn default() -> SampleOptions {
        SampleOptions { samples: 64, seed: 0, use_infeasible: true, max_steps: 1 << 20 }
    }
}

/// The observed WCET distribution of one sampling run. A pure function
/// of (artifacts, options) — everything here is deterministic and may
/// appear in `results_json`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SampleSummary {
    /// Walks requested ([`SampleOptions::samples`]).
    pub samples: usize,
    /// The seed the walks were drawn with.
    pub seed: u64,
    /// Walks that reached a task exit (the statistics population).
    pub completed: usize,
    /// Walks that got stuck before an exit or hit the step cap;
    /// excluded from the statistics.
    pub dead_ends: usize,
    /// Largest sampled path cost in cycles (`None` with no completed
    /// walks). The soundness invariant: `observed_max ≤ ILP WCET`.
    pub observed_max: Option<u64>,
    /// Smallest sampled path cost.
    pub observed_min: Option<u64>,
    /// Integer mean of the sampled costs (`total_cycles / completed`).
    pub mean: Option<u64>,
    /// Nearest-rank 50th percentile of the sampled costs.
    pub p50: Option<u64>,
    /// Nearest-rank 90th percentile.
    pub p90: Option<u64>,
    /// Nearest-rank 99th percentile.
    pub p99: Option<u64>,
    /// Sum of all completed walk costs (the mean's exact numerator).
    pub total_cycles: u64,
}

/// Nearest-rank percentile of an ascending-sorted slice: the value at
/// rank `⌈pct/100 · n⌉` (1-based), clamped to the first element for
/// tiny `pct`. `None` on an empty slice; the sole element on a
/// singleton, whatever `pct`.
pub fn percentile(sorted: &[u64], pct: u32) -> Option<u64> {
    if sorted.is_empty() {
        return None;
    }
    let n = sorted.len();
    let rank = (pct.min(100) as usize * n).div_ceil(100).clamp(1, n);
    Some(sorted[rank - 1])
}

/// One loop instance of the supergraph, keyed as in `stamp-path`.
struct LoopInstance {
    /// `lb.bound(header, frames)`; `None` for unbounded instances
    /// (whose edges are blocked, mirroring the ILP's pin-to-zero).
    bound: Option<u64>,
    /// Whether any back edge targets this instance (the ILP only
    /// constrains instances with back edges).
    has_backs: bool,
}

/// Samples `options.samples` random entry→exit paths and summarizes
/// their cost distribution. Reuses the already-computed analysis
/// artifacts — no phase is re-run.
pub fn sample_paths(
    cfg: &Cfg,
    icfg: &Icfg,
    va: &ValueAnalysis,
    lb: &LoopBoundAnalysis,
    pa: &PipelineAnalysis,
    options: &SampleOptions,
) -> SampleSummary {
    let n_edges = icfg.edges().len();

    // ---- Precompute the per-edge walk tables (one pass, mirrored
    // from the ILP construction in `stamp_path::analyze`).
    // Cost of traversing an edge: the target node's time plus the
    // taken-transfer penalty — the edge's ILP objective coefficient.
    let mut edge_cost: Vec<u64> = Vec::with_capacity(n_edges);
    for e in icfg.edges() {
        edge_cost.push(pa.time(e.to).unwrap_or(0) + pa.edge_penalty(cfg, icfg, e));
    }

    // Loop instances: (header block, target context with the loop's
    // own trailing frame stripped) — exactly the ILP's keying.
    let mut instances: Vec<LoopInstance> = Vec::new();
    let mut instance_of: std::collections::HashMap<(BlockId, Vec<Frame>), usize> =
        std::collections::HashMap::new();
    // Per edge: Some((instance index, is_back)) when the edge targets a
    // loop-header node.
    let mut edge_loop: Vec<Option<(usize, bool)>> = vec![None; n_edges];
    for e in icfg.edges() {
        let to = icfg.node(e.to);
        let header = to.block;
        let header_has_loop = lb.bounds().keys().any(|(h, _)| *h == header)
            || lb.unbounded().iter().any(|(h, _)| *h == header);
        if !header_has_loop {
            continue;
        }
        let is_back =
            matches!(e.kind, IEdgeKind::Intra { back_edge_of: Some(h), .. } if h == header);
        let ctx = icfg.ctxs().get(to.ctx);
        let mut frames = ctx.frames().to_vec();
        if matches!(frames.last(), Some(Frame::Loop { header: h, .. }) if *h == header) {
            frames.pop();
        }
        let idx = *instance_of.entry((header, frames.clone())).or_insert_with(|| {
            instances.push(LoopInstance { bound: lb.bound(header, &frames), has_backs: false });
            instances.len() - 1
        });
        instances[idx].has_backs |= is_back;
        edge_loop[e.id.index()] = Some((idx, is_back));
    }

    // Edges a walk must never traverse: value-analysis infeasible edges
    // (when the ILP pins them too) and every edge of an unbounded loop
    // instance that has back edges — the ILP either pinned that
    // instance's flow to zero (provably never entered) or refused to
    // solve; both ways those edges carry no feasible flow.
    let mut blocked = vec![false; n_edges];
    if options.use_infeasible {
        for &e in va.infeasible_edges() {
            blocked[e.index()] = true;
        }
    }
    for (idx, bl) in edge_loop.iter().zip(blocked.iter_mut()) {
        if let Some((inst, _)) = idx {
            let inst = &instances[*inst];
            if inst.has_backs && inst.bound.is_none() {
                *bl = true;
            }
        }
    }

    let mut is_exit = vec![false; icfg.nodes().len()];
    for &x in icfg.exits() {
        is_exit[x.index()] = true;
    }

    // ---- The walks.
    let entry_time = pa.time(icfg.entry()).unwrap_or(0);
    let mut rng = StdRng::seed_from_u64(options.seed);
    let mut costs: Vec<u64> = Vec::with_capacity(options.samples);
    let mut dead_ends = 0usize;
    // (entries, backs) per loop instance, reset per walk.
    let mut counters: Vec<(u64, u64)> = vec![(0, 0); instances.len()];
    // Eligible successors of the current node: (edge index, target,
    // weight). Reused across steps.
    let mut eligible: Vec<(usize, NodeId, u64)> = Vec::new();

    for _ in 0..options.samples {
        counters.iter_mut().for_each(|c| *c = (0, 0));
        let mut cur = icfg.entry();
        let mut cost = entry_time;
        let mut steps = 0usize;
        let completed = loop {
            if is_exit[cur.index()] {
                // Task exits (halt blocks, the entry function's return
                // in the root context) have no successors — the walk is
                // one complete source→sink flow.
                break true;
            }
            eligible.clear();
            let mut total_w: u64 = 0;
            for e in icfg.succs(cur) {
                let idx = e.id.index();
                if blocked[idx] {
                    continue;
                }
                let w = match edge_loop[idx] {
                    Some((inst, true)) => {
                        // Back edge: weight = remaining iteration budget
                        // of the ILP constraint Σbacks ≤ (bound−1)·Σentries.
                        let (entries, backs) = counters[inst];
                        let bound = instances[inst].bound.expect("unbounded backs are blocked");
                        let budget =
                            bound.saturating_sub(1).saturating_mul(entries).saturating_sub(backs);
                        if budget == 0 {
                            continue;
                        }
                        budget
                    }
                    _ => 1,
                };
                total_w = total_w.saturating_add(w);
                eligible.push((idx, e.to, w));
            }
            if eligible.is_empty() {
                break false;
            }
            // Weighted draw, deterministic in (seed, successor order).
            let mut pick = rng.gen_range(0..total_w);
            let mut sel = eligible.len() - 1;
            for (i, &(_, _, w)) in eligible.iter().enumerate() {
                if pick < w {
                    sel = i;
                    break;
                }
                pick -= w;
            }
            let (idx, to, _) = eligible[sel];
            cost = cost.saturating_add(edge_cost[idx]);
            if let Some((inst, is_back)) = edge_loop[idx] {
                if is_back {
                    counters[inst].1 += 1;
                } else {
                    counters[inst].0 += 1;
                }
            }
            cur = to;
            steps += 1;
            if steps >= options.max_steps {
                break false;
            }
        };
        if completed {
            costs.push(cost.saturating_add(pa.ps_extra_cycles()));
        } else {
            dead_ends += 1;
        }
    }

    costs.sort_unstable();
    let total_cycles = costs.iter().fold(0u64, |a, &c| a.saturating_add(c));
    SampleSummary {
        samples: options.samples,
        seed: options.seed,
        completed: costs.len(),
        dead_ends,
        observed_max: costs.last().copied(),
        observed_min: costs.first().copied(),
        mean: if costs.is_empty() { None } else { Some(total_cycles / costs.len() as u64) },
        p50: percentile(&costs, 50),
        p90: percentile(&costs, 90),
        p99: percentile(&costs, 99),
        total_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stamp_ai::{Icfg, VivuConfig};
    use stamp_cache::CacheAnalysis;
    use stamp_cfg::CfgBuilder;
    use stamp_hw::HwConfig;
    use stamp_isa::asm::assemble;
    use stamp_loopbound::LoopBoundOptions;
    use stamp_path::PathOptions;
    use stamp_value::ValueOptions;

    /// Runs the whole pipeline plus the ILP, then samples, returning
    /// (ILP WCET, summary).
    fn wcet_and_samples(src: &str, hw: &HwConfig, options: &SampleOptions) -> (u64, SampleSummary) {
        let p = assemble(src).expect("assembles");
        let cfg = CfgBuilder::new(&p).build().expect("builds");
        let icfg = Icfg::build(&cfg, &VivuConfig::default()).expect("expands");
        let va = ValueAnalysis::run(&p, hw, &cfg, &icfg, &ValueOptions::default());
        let lb = LoopBoundAnalysis::run(&p, &cfg, &icfg, &va, &LoopBoundOptions::default());
        let ca = CacheAnalysis::run(hw, &cfg, &icfg, &va);
        let pa = PipelineAnalysis::run(hw, &cfg, &icfg, &ca, &va);
        let path_opts =
            PathOptions { use_infeasible: options.use_infeasible, ..PathOptions::default() };
        let res = stamp_path::analyze(&cfg, &icfg, &va, &lb, &pa, &path_opts).expect("ilp");
        let summary = sample_paths(&cfg, &icfg, &va, &lb, &pa, options);
        (res.wcet, summary)
    }

    fn assert_distribution_under(wcet: u64, s: &SampleSummary) {
        assert!(s.completed > 0, "no walk completed: {s:?}");
        let max = s.observed_max.unwrap();
        assert!(max <= wcet, "sampled max {max} exceeds ILP WCET {wcet}");
        let (min, mean) = (s.observed_min.unwrap(), s.mean.unwrap());
        assert!(min <= mean && mean <= max, "{s:?}");
        let (p50, p90, p99) = (s.p50.unwrap(), s.p90.unwrap(), s.p99.unwrap());
        assert!(min <= p50 && p50 <= p90 && p90 <= p99 && p99 <= max, "{s:?}");
        assert_eq!(s.completed + s.dead_ends, s.samples);
    }

    #[test]
    fn straight_line_is_a_point_distribution() {
        let src = ".text\nmain: li r1, 3\nmul r2, r1, r1\nhalt\n";
        for hw in [HwConfig::ideal(), HwConfig::default()] {
            let (wcet, s) = wcet_and_samples(src, &hw, &SampleOptions::default());
            assert_distribution_under(wcet, &s);
            assert_eq!(s.observed_max, Some(wcet), "single path: sampling is exact");
            assert_eq!(s.observed_min, Some(wcet));
            assert_eq!(s.completed, s.samples);
        }
    }

    #[test]
    fn counted_loop_distribution_stays_under_the_bound() {
        let src = ".text\nmain: li r1, 10\nloop: addi r1, r1, -1\nbnez r1, loop\nhalt\n";
        for hw in [HwConfig::ideal(), HwConfig::default()] {
            let (wcet, s) = wcet_and_samples(src, &hw, &SampleOptions::default());
            assert_distribution_under(wcet, &s);
        }
    }

    #[test]
    fn nested_loops_and_calls_stay_under_the_bound() {
        let nested = "\
            .text
            main:  li r1, 3
            outer: li r2, 4
            inner: addi r2, r2, -1
                   bnez r2, inner
                   addi r1, r1, -1
                   bnez r1, outer
                   halt
        ";
        let calls = "\
            .text
            main: call f
                  call f
                  halt
            f:    div r1, r2, r3
                  ret
        ";
        for src in [nested, calls] {
            for hw in [HwConfig::ideal(), HwConfig::default()] {
                let (wcet, s) = wcet_and_samples(src, &hw, &SampleOptions::default());
                assert_distribution_under(wcet, &s);
            }
        }
    }

    #[test]
    fn branchy_sampling_covers_both_arms_under_the_bound() {
        let src = "\
            .text
            main: beq r2, r0, cheap
                  div r3, r4, r5
                  halt
            cheap:
                  addi r3, r0, 1
                  halt
        ";
        let (wcet, s) = wcet_and_samples(src, &HwConfig::ideal(), &SampleOptions::default());
        assert_distribution_under(wcet, &s);
        // Both arms are feasible and unweighted, so 64 walks all but
        // surely see both: the distribution is not a point.
        assert!(s.observed_min.unwrap() < s.observed_max.unwrap(), "{s:?}");
        assert_eq!(s.observed_max, Some(wcet), "the worst arm is the whole WCET here");
    }

    #[test]
    fn infeasible_arm_is_never_walked() {
        // The expensive arm is dead: r1 is always 3. With pruning on,
        // every walk takes the cheap arm and matches the pruned ILP
        // exactly; with pruning ablated the walk may take the dead arm
        // but must stay under the ablated (larger) bound.
        let src = "\
            .text
            main: li r1, 3
                  bne r1, r0, cheap
                  div r3, r4, r5
                  div r3, r4, r5
                  halt
            cheap:
                  addi r3, r0, 1
                  halt
        ";
        let (wcet, s) = wcet_and_samples(src, &HwConfig::ideal(), &SampleOptions::default());
        assert_distribution_under(wcet, &s);
        assert_eq!(s.observed_max, Some(wcet), "one feasible path: exact");
        assert_eq!(s.observed_min, Some(wcet));

        let ablated = SampleOptions { use_infeasible: false, ..SampleOptions::default() };
        let (loose_wcet, loose) = wcet_and_samples(src, &HwConfig::ideal(), &ablated);
        assert!(loose_wcet > wcet);
        assert_distribution_under(loose_wcet, &loose);
    }

    #[test]
    fn same_seed_is_bit_identical_and_seeds_are_independent() {
        let src = ".text\nmain: li r1, 25\nloop: addi r1, r1, -1\nbnez r1, loop\nhalt\n";
        let opts = SampleOptions { samples: 32, seed: 7, ..SampleOptions::default() };
        let (_, a) = wcet_and_samples(src, &HwConfig::default(), &opts);
        let (_, b) = wcet_and_samples(src, &HwConfig::default(), &opts);
        assert_eq!(a, b, "same seed, same artifacts: identical summary");
        let (wcet, c) =
            wcet_and_samples(src, &HwConfig::default(), &SampleOptions { seed: 8, ..opts });
        assert_distribution_under(wcet, &c);
    }

    #[test]
    fn zero_samples_yield_an_empty_summary() {
        let src = ".text\nmain: halt\n";
        let opts = SampleOptions { samples: 0, ..SampleOptions::default() };
        let (_, s) = wcet_and_samples(src, &HwConfig::ideal(), &opts);
        assert_eq!(s.completed, 0);
        assert_eq!(s.observed_max, None);
        assert_eq!(s.mean, None);
        assert_eq!(s.p99, None);
        assert_eq!(s.total_cycles, 0);
    }

    #[test]
    fn percentile_is_nearest_rank_with_edge_cases() {
        assert_eq!(percentile(&[], 50), None);
        assert_eq!(percentile(&[], 0), None);
        assert_eq!(percentile(&[42], 0), Some(42));
        assert_eq!(percentile(&[42], 50), Some(42));
        assert_eq!(percentile(&[42], 100), Some(42));
        let v = [10, 20, 30, 40];
        assert_eq!(percentile(&v, 0), Some(10), "tiny pct clamps to the first rank");
        assert_eq!(percentile(&v, 25), Some(10));
        assert_eq!(percentile(&v, 50), Some(20));
        assert_eq!(percentile(&v, 75), Some(30));
        assert_eq!(percentile(&v, 90), Some(40));
        assert_eq!(percentile(&v, 100), Some(40));
        assert_eq!(percentile(&v, 200), Some(40), "pct clamps to 100");
        let ten: Vec<u64> = (1..=10).collect();
        assert_eq!(percentile(&ten, 50), Some(5));
        assert_eq!(percentile(&ten, 90), Some(9));
        assert_eq!(percentile(&ten, 99), Some(10));
        assert_eq!(percentile(&ten, 1), Some(1));
    }
}
