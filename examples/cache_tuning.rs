//! Hardware dimensioning with static WCET bounds (experiment E9): sweep
//! the cache size and watch the WCET bound respond — "precise stack
//! usage and timing predictions enable the most cost-efficient hardware
//! to be chosen" (paper §4).
//!
//! ```sh
//! cargo run --example cache_tuning [benchmark-name]
//! ```

use stamp::{HwConfig, WcetAnalysis};
use stamp_suite::benchmarks;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "matmult".to_string());
    let bench =
        benchmarks().into_iter().find(|b| b.name == name && b.supports_wcet).unwrap_or_else(|| {
            eprintln!("unknown or recursive benchmark `{name}`");
            std::process::exit(1);
        });
    let program = bench.program();

    println!("WCET bound of `{name}` vs. cache size (I+D, 2-way, 16 B lines)");
    println!("{:>12} {:>12} {:>10}", "cache bytes", "WCET cycles", "vs 4 KiB");
    let mut results = Vec::new();
    for bytes in [64u32, 128, 256, 512, 1024, 2048, 4096] {
        let hw = HwConfig::with_cache_bytes(bytes);
        let report = WcetAnalysis::new(&program).hw(hw).annotations(bench.annotations()).run()?;
        results.push((bytes, report.wcet));
    }
    let best = results.last().map(|&(_, w)| w).unwrap_or(1);
    for (bytes, wcet) in &results {
        println!("{bytes:>12} {wcet:>12} {:>9.2}x", *wcet as f64 / best as f64);
    }
    println!(
        "\nno cache at all: {} cycles",
        WcetAnalysis::new(&program)
            .hw(HwConfig::no_cache())
            .annotations(bench.annotations())
            .run()?
            .wcet
    );
    println!("pick the smallest size whose bound still meets the deadline.");
    Ok(())
}
