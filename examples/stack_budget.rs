//! Whole-ECU stack budgeting for an OSEK-style system (paper §2 and
//! ref [3]): per-task StackAnalyzer bounds combined over preemption
//! chains, compared with the naive per-task reservation.
//!
//! ```sh
//! cargo run --example stack_budget
//! ```

use stamp::{assemble, Annotations, OsekSystem, StackAnalysis, Task};

const ECU: &str = r#"
        .text
main:   call task_engine
        halt

task_engine:                    ; 10 ms control loop body
        addi sp, sp, -80
        sw   lr, 0(sp)
        call pid
        lw   lr, 0(sp)
        addi sp, sp, 80
        ret

task_diag:                      ; diagnostics, may recurse over a tree
        addi sp, sp, -48
        sw   lr, 0(sp)
        li   r1, 6
        call walk
        lw   lr, 0(sp)
        addi sp, sp, 48
        ret

task_ui:                        ; lowest priority, big buffers
        addi sp, sp, -200
        addi sp, sp, 200
        ret

pid:    addi sp, sp, -64
        li   r1, 16
ploop:  addi r1, r1, -1
        bnez r1, ploop
        addi sp, sp, 64
        ret

walk:   addi sp, sp, -24        ; recursive tree walk
        sw   lr, 4(sp)
        beqz r1, wdone
        sw   r1, 0(sp)
        addi r1, r1, -1
        call walk
        lw   r1, 0(sp)
wdone:  lw   lr, 4(sp)
        addi sp, sp, 24
        ret
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = assemble(ECU)?;
    // `walk` recurses: the diag task needs a depth annotation, exactly
    // like aiT/StackAnalyzer annotations.
    let ann = Annotations::new().recursion_depth("walk", 7);

    println!("per-task worst-case stack bounds");
    println!("--------------------------------");
    let mut bounds = Vec::new();
    for task in ["task_engine", "task_diag", "task_ui"] {
        let report = StackAnalysis::new(&program).annotations(ann.clone()).run_task(task)?;
        println!("{task:<14} {:>6} bytes   ({} mode)", report.bound, report.mode);
        for (f, fs) in &report.per_function {
            println!("    {f:<12} local {:>4}  usage {:>4}", fs.local, fs.usage);
        }
        bounds.push(report.bound);
    }

    // diag runs holding an internal resource (non-preemptable), so the
    // engine task never piles on top of it — the chain analysis exploits
    // exactly this, as described in ref [3].
    let system = OsekSystem::new(vec![
        Task::new("task_ui", 1, bounds[2]),
        Task::non_preemptable("task_diag", 2, bounds[1]),
        Task::new("task_engine", 3, bounds[0]),
    ]);

    println!("\nwhole-ECU stack (shared stack, priority preemption)");
    println!("---------------------------------------------------");
    println!("naive reservation (sum of all tasks): {:>6} bytes", system.naive_bound());
    println!("preemption-chain bound:               {:>6} bytes", system.system_bound());
    println!(
        "saved RAM:                            {:>6} bytes",
        system.naive_bound() - system.system_bound()
    );
    Ok(())
}
