//! Quickstart: assemble a task, bound its WCET and stack, print the
//! aiT-style report.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use stamp::{assemble, StackAnalysis, WcetAnalysis};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small control task: scale a sensor buffer and accumulate.
    let program = assemble(
        r#"
            .equ N, 32
            .text
        main:
            addi sp, sp, -16        ; frame
            li   r1, 0              ; i
            li   r6, 0              ; acc
            la   r2, buf
        loop:
            slli r3, r1, 2
            add  r3, r2, r3
            lw   r4, 0(r3)          ; buf[i]
            mul  r4, r4, r5
            add  r6, r6, r4
            addi r1, r1, 1
            slti r7, r1, N
            bnez r7, loop
            addi sp, sp, 16
            halt
            .data
        buf:
            .space 128
        "#,
    )?;

    let wcet = WcetAnalysis::new(&program).run()?;
    println!("{}", wcet.render(&program));

    let stack = StackAnalysis::new(&program).run()?;
    println!("worst-case stack usage: {} bytes ({} mode)", stack.bound, stack.mode);

    Ok(())
}
