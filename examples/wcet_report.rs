//! Full WCET analysis of a corpus benchmark, with all artifacts: report
//! file, JSON, annotated DOT graph, and a soundness check against the
//! cycle-accurate simulator.
//!
//! ```sh
//! cargo run --example wcet_report [benchmark-name]
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use stamp::{HwConfig, WcetAnalysis};
use stamp_suite::benchmarks;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "matmult".to_string());
    let bench = benchmarks().into_iter().find(|b| b.name == name).unwrap_or_else(|| {
        eprintln!("unknown benchmark `{name}`; available:");
        for b in benchmarks() {
            eprintln!("  {:<12} {}", b.name, b.description);
        }
        std::process::exit(1);
    });
    if !bench.supports_wcet {
        eprintln!("`{name}` is recursive — only the stack analysis applies (see stack_budget)");
        std::process::exit(1);
    }

    let program = bench.program();
    let hw = HwConfig::default();
    let report = WcetAnalysis::new(&program).hw(hw).annotations(bench.annotations()).run()?;

    println!("{}", report.render(&program));

    // Sandwich the bound with measurements, as §3 of the paper contrasts:
    // "direct measurement … can only determine the execution time for
    // some fixed inputs".
    let mut rng = StdRng::seed_from_u64(42);
    let (observed, _) = bench.worst_observed(&program, &hw, 50, &mut rng);
    println!("worst observed over 50 random + adversarial runs: {observed} cycles");
    println!("static WCET bound:                                {} cycles", report.wcet);
    println!("over-estimation vs. best measurement: {:.1} %", {
        100.0 * (report.wcet as f64 / observed as f64 - 1.0)
    });

    // Machine-readable artifacts.
    let json_path = std::env::temp_dir().join(format!("{name}.wcet.json"));
    std::fs::write(&json_path, report.to_json().to_string())?;
    let dot_path = std::env::temp_dir().join(format!("{name}.cfg.dot"));
    std::fs::write(&dot_path, report.to_dot())?;
    println!("\nwrote {} and {}", json_path.display(), dot_path.display());

    Ok(())
}
