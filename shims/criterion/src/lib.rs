//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the subset of the criterion 0.5 bench-definition API its
//! benches use (`criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function`, `bench_with_input`, `BenchmarkId`). Measurement is
//! a plain timed loop printing mean wall-clock time per iteration — no
//! statistics, plots or HTML reports. Benches compile under
//! `cargo bench --no-run` and produce readable numbers under
//! `cargo bench`.
//!
//! When the `STAMP_BENCH_JSON` environment variable names a file, every
//! measurement is additionally appended to it as one JSON object per
//! line (`{"group":…,"id":…,"secs_per_iter":…,"iters":…}`), so bench
//! results can be collected machine-readably (the same convention
//! `BENCH_kernel.json` uses for the kernel bench).

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Label for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to the bench closure; `iter` runs and times the payload.
pub struct Bencher {
    measurement_time: Duration,
    warm_up_time: Duration,
    /// (iterations, total elapsed) recorded by the last `iter` call.
    result: Option<(u64, Duration)>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up budget is spent, and use the
        // observed speed to pick an iteration count for measurement.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let iters = ((self.measurement_time.as_secs_f64() / per_iter.max(1e-9)) as u64)
            .clamp(1, 10_000_000);

        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.result = Some((iters, start.elapsed()));
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; the shim sizes runs by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let mut bencher = Bencher {
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            result: None,
        };
        f(&mut bencher);
        match bencher.result {
            Some((iters, total)) => {
                let per = total.as_secs_f64() / iters as f64;
                println!(
                    "{}/{:<40} {:>14} /iter   ({} iters in {:.3} s)",
                    self.name,
                    id,
                    format_time(per),
                    iters,
                    total.as_secs_f64(),
                );
                record_json(&self.name, &id, per, iters);
            }
            None => println!("{}/{}: bench closure never called iter()", self.name, id),
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        self.run_one(id.to_string(), f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run_one(id.to_string(), |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {}
}

/// Appends one measurement to `$STAMP_BENCH_JSON` (JSON lines), if set.
fn record_json(group: &str, id: &str, secs_per_iter: f64, iters: u64) {
    let Ok(path) = std::env::var("STAMP_BENCH_JSON") else { return };
    if path.is_empty() {
        return;
    }
    let escape = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let line = format!(
        "{{\"group\":\"{}\",\"id\":\"{}\",\"secs_per_iter\":{:e},\"iters\":{}}}\n",
        escape(group),
        escape(id),
        secs_per_iter,
        iters
    );
    if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(&path) {
        let _ = f.write_all(line.as_bytes());
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Entry point handed to each `criterion_group!` function.
pub struct Criterion {
    default_measurement: Duration,
    default_warm_up: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            // Modest defaults: the shim is for smoke-benching, not
            // statistically rigorous measurement.
            default_measurement: Duration::from_secs(1),
            default_warm_up: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            measurement_time: self.default_measurement,
            warm_up_time: self.default_warm_up,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let id = id.to_string();
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
