//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships a minimal, API-compatible subset of proptest 1.x:
//!
//! * [`strategy::Strategy`] with `prop_map`, `prop_filter`,
//!   `prop_flat_map` and `boxed`;
//! * range, tuple, [`strategy::Just`], [`collection::vec`],
//!   [`arbitrary::any`] and [`sample::Index`] strategies;
//! * the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`] and
//!   [`prop_oneof!`] macros;
//! * a deterministic [`test_runner::TestRunner`].
//!
//! The one deliberate omission is shrinking: a failing case panics with
//! the assertion message (plus its case index on stderr) instead of a
//! minimized counterexample — include the generated values in
//! `prop_assert!` format args to see them, as the suites in this
//! workspace do. Generation is fully deterministic: every test's RNG
//! is seeded from a fixed hash of the test name, so `cargo test` gives
//! identical results on every run and machine (see
//! `proptest-regressions/README.md` at the workspace root). As
//! upstream, the `PROPTEST_CASES` environment variable feeds
//! `ProptestConfig::default()`, so it scales tests that use the
//! default config while explicit `with_cases(n)` headers keep their
//! configured count.

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Configuration for a `proptest!` block.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
        /// Resample attempts for `prop_filter` before giving up.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases, ..Default::default() }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Like upstream: the env var feeds the *default* config, so
            // an explicit `with_cases(n)` still takes precedence.
            let cases =
                std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(256);
            ProptestConfig { cases, max_global_rejects: 65536 }
        }
    }

    /// Deterministic source of randomness for strategy generation.
    pub struct TestRunner {
        rng: StdRng,
        config: ProptestConfig,
    }

    /// FNV-1a, used to derive a stable per-test seed from the test name.
    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    impl TestRunner {
        /// Runner with a fixed seed (matches upstream's deterministic
        /// runner used in exhaustive-ish loops).
        pub fn deterministic() -> Self {
            TestRunner {
                rng: StdRng::seed_from_u64(0x5461_6d70_5365_6564), // "StampSeed"-ish
                config: ProptestConfig::default(),
            }
        }

        pub fn new(config: ProptestConfig) -> Self {
            TestRunner { rng: StdRng::seed_from_u64(0x5461_6d70_5365_6564), config }
        }

        /// Runner seeded from the test name: deterministic across runs,
        /// decorrelated across tests.
        pub fn new_for_test(config: ProptestConfig, test_name: &str) -> Self {
            TestRunner { rng: StdRng::seed_from_u64(fnv1a(test_name.as_bytes())), config }
        }

        /// Case count from the config (`ProptestConfig::default` reads
        /// the `PROPTEST_CASES` env var, upstream-style).
        pub fn cases(&self) -> u32 {
            self.config.cases
        }

        pub fn config(&self) -> &ProptestConfig {
            &self.config
        }

        pub fn next_u64(&mut self) -> u64 {
            self.rng.next_u64()
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRunner;
    use std::rc::Rc;

    /// A generated value plus (vestigial) shrinking hooks.
    pub trait ValueTree {
        type Value;
        fn current(&self) -> Self::Value;
        fn simplify(&mut self) -> bool {
            false
        }
        fn complicate(&mut self) -> bool {
            false
        }
    }

    /// The tree type used by every shim strategy: just the value.
    #[derive(Clone, Debug)]
    pub struct Flat<T: Clone>(pub T);

    impl<T: Clone> ValueTree for Flat<T> {
        type Value = T;
        fn current(&self) -> T {
            self.0.clone()
        }
    }

    /// A recipe for generating values of type `Value`.
    pub trait Strategy {
        type Value: Clone;

        fn generate(&self, runner: &mut TestRunner) -> Self::Value;

        fn new_tree(&self, runner: &mut TestRunner) -> Result<Flat<Self::Value>, String> {
            Ok(Flat(self.generate(runner)))
        }

        fn prop_map<U: Clone, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        fn prop_filter<R: Into<String>, F: Fn(&Self::Value) -> bool>(
            self,
            reason: R,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter { source: self, reason: reason.into(), f }
        }

        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { source: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let this = self;
            BoxedStrategy(Rc::new(move |runner| this.generate(runner)))
        }
    }

    /// Type-erased strategy (the shim erases to a generation closure).
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRunner) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T: Clone> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, runner: &mut TestRunner) -> T {
            (self.0)(runner)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _runner: &mut TestRunner) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, U: Clone, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, runner: &mut TestRunner) -> U {
            (self.f)(self.source.generate(runner))
        }
    }

    pub struct Filter<S, F> {
        source: S,
        reason: String,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, runner: &mut TestRunner) -> S::Value {
            let rejects = runner.config().max_global_rejects;
            for _ in 0..=rejects {
                let v = self.source.generate(runner);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("proptest shim: prop_filter exhausted {rejects} rejects: {}", self.reason);
        }
    }

    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, runner: &mut TestRunner) -> T::Value {
            (self.f)(self.source.generate(runner)).generate(runner)
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

    impl<T: Clone> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, runner: &mut TestRunner) -> T {
            assert!(!self.0.is_empty(), "prop_oneof! of zero strategies");
            let i = (runner.next_u64() % self.0.len() as u64) as usize;
            self.0[i].generate(runner)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, runner: &mut TestRunner) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let k = (runner.next_u64() as u128) % span;
                    (self.start as i128 + k as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, runner: &mut TestRunner) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    let k = (runner.next_u64() as u128) % span;
                    (lo as i128 + k as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(runner),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;
    use std::marker::PhantomData;

    /// Types with a canonical strategy, reachable via [`any`].
    pub trait Arbitrary: Clone {
        fn generate_arbitrary(runner: &mut TestRunner) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn generate_arbitrary(runner: &mut TestRunner) -> Self {
                    runner.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn generate_arbitrary(runner: &mut TestRunner) -> Self {
            runner.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for crate::sample::Index {
        fn generate_arbitrary(runner: &mut TestRunner) -> Self {
            crate::sample::Index::from_raw(runner.next_u64())
        }
    }

    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, runner: &mut TestRunner) -> T {
            T::generate_arbitrary(runner)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod sample {
    /// An index into a collection of (yet unknown) size.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        pub(crate) fn from_raw(raw: u64) -> Self {
            Index(raw)
        }

        /// Project onto `0..len`. Panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;
    use std::ops::{Range, RangeInclusive};

    /// Accepted size specifications for [`vec`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + (runner.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(runner)).collect()
        }
    }

    /// `proptest::collection::vec`: a vector of `element`s with a length
    /// drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// The `prop::` module alias exposed by the prelude (upstream exposes
/// the crate's module tree under this name).
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
    pub use crate::strategy;
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Like `assert!`, but named so proptest-style test bodies compile
/// unchanged. (No shrinking in the shim, so this is a plain assertion.)
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among the listed strategies (all must share a value
/// type). Weighted arms (`w => strat`) are accepted and the weights are
/// honoured by repetition.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {{
        let mut alts = Vec::new();
        $(
            let boxed = $crate::strategy::Strategy::boxed($strat);
            // A zero weight disables the arm entirely, as upstream.
            for _ in 0..($weight as usize) {
                alts.push(boxed.clone());
            }
        )+
        $crate::strategy::Union(alts)
    }};
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union(vec![$($crate::strategy::Strategy::boxed($strat)),+])
    };
}

/// The `proptest!` test-definition macro: each `fn name(pat in strategy,
/// ...) { body }` becomes a `#[test]` that generates `cases` inputs from
/// a deterministic, per-test-seeded runner and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $config;
                let mut __runner = $crate::test_runner::TestRunner::new_for_test(
                    __config,
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__runner.cases() {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __runner);)*
                    // Upstream proptest runs the body in a closure
                    // returning Result, so bodies may `return Ok(())`
                    // to skip a case early. A panicking case reports
                    // its index first: generation is deterministic, so
                    // index + per-test seed reproduces the inputs.
                    #[allow(clippy::redundant_closure_call)]
                    let __result: ::std::result::Result<
                        ::std::result::Result<(), ::std::string::String>,
                        ::std::boxed::Box<dyn ::std::any::Any + ::std::marker::Send>,
                    > = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        $body
                        ::std::result::Result::Ok(())
                    }));
                    match __result {
                        ::std::result::Result::Ok(::std::result::Result::Ok(())) => {}
                        ::std::result::Result::Ok(::std::result::Result::Err(__e)) => {
                            panic!("proptest case failed: {}", __e);
                        }
                        ::std::result::Result::Err(__payload) => {
                            eprintln!(
                                "proptest shim: {} failed at case {} of {} \
                                 (deterministic: rerunning reproduces this case)",
                                stringify!($name),
                                __case,
                                __runner.cases(),
                            );
                            ::std::panic::resume_unwind(__payload);
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples() {
        let mut runner = TestRunner::deterministic();
        for _ in 0..100 {
            let (a, b) = (0u32..10, -5i32..=5).generate(&mut runner);
            assert!(a < 10);
            assert!((-5..=5).contains(&b));
        }
    }

    #[test]
    fn oneof_and_map() {
        let mut runner = TestRunner::deterministic();
        let s = prop_oneof![Just(1u32), Just(2), 10u32..20].prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = s.generate(&mut runner);
            assert!(v == 2 || v == 4 || (20..40).contains(&v));
        }
    }

    #[test]
    fn vec_sizes() {
        let mut runner = TestRunner::deterministic();
        let s = prop::collection::vec(0u32..5, 1..4);
        for _ in 0..100 {
            let v = s.generate(&mut runner);
            assert!((1..=3).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_smoke((a, b) in (0u32..100, 0u32..100), v in prop::collection::vec(0u8..4, 0..8)) {
            prop_assert!(a < 100 && b < 100);
            prop_assert!(v.len() < 8);
        }
    }

    #[test]
    fn deterministic_across_runners() {
        let a: Vec<u32> = {
            let mut r = TestRunner::new_for_test(ProptestConfig::default(), "t");
            (0..32).map(|_| (0u32..1000).generate(&mut r)).collect()
        };
        let b: Vec<u32> = {
            let mut r = TestRunner::new_for_test(ProptestConfig::default(), "t");
            (0..32).map(|_| (0u32..1000).generate(&mut r)).collect()
        };
        assert_eq!(a, b);
    }
}
