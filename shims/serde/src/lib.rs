//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io. This workspace
//! only ever *derives* `Serialize`/`Deserialize` (on the hardware
//! configuration types in `stamp_hw`) and never actually serializes
//! through serde — report output goes through the hand-written JSON
//! writer in `stamp_core::json`. So the traits here are pure markers,
//! and the derives (from the sibling `serde_derive` shim) emit empty
//! impls. Swapping in real serde later is a one-line Cargo.toml change;
//! no source file needs to change.

/// Marker: the type declares itself serializable.
pub trait Serialize {}

/// Marker: the type declares itself deserializable.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_markers {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}
impl_markers!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, String, char);

impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Box<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}
