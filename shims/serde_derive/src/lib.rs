//! Offline stand-in for `serde_derive`.
//!
//! The real derives generate full (de)serialization impls; the shim's
//! `serde` traits are empty markers, so these derives only need to name
//! the type. Parsing is a hand-rolled scan of the token stream (syn and
//! quote are equally unavailable offline): find the identifier after
//! `struct`/`enum`/`union`, collect any generic parameter names, and
//! emit an empty impl.

use proc_macro::{TokenStream, TokenTree};

/// The deriving type's name and its generic parameter idents (lifetimes
/// and type params; bounds and where-clauses are not supported — the
/// workspace only derives on plain structs and enums).
fn parse_type_header(input: TokenStream) -> (String, Vec<String>) {
    let mut iter = input.into_iter();
    while let Some(tt) = iter.next() {
        let TokenTree::Ident(ident) = &tt else {
            continue;
        };
        let kw = ident.to_string();
        if kw != "struct" && kw != "enum" && kw != "union" {
            continue;
        }
        let Some(TokenTree::Ident(name)) = iter.next() else {
            panic!("serde_derive shim: expected a type name after `{kw}`");
        };
        let mut generics = Vec::new();
        let mut rest = iter.peekable();
        if matches!(&rest.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
            rest.next();
            let mut depth = 1usize;
            let mut expecting_param = true;
            // `->` in a bound like `F: Fn() -> u32` must not close the
            // generics list, so remember the previous punct char.
            let mut prev_punct: Option<char> = None;
            while depth > 0 {
                let tt = rest.next();
                let this_punct = match &tt {
                    Some(TokenTree::Punct(p)) => Some(p.as_char()),
                    _ => None,
                };
                let after_dash = prev_punct == Some('-');
                prev_punct = this_punct;
                match tt {
                    Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                    Some(TokenTree::Punct(p)) if p.as_char() == '>' && after_dash => {}
                    Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 1 => {
                        expecting_param = true;
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == '\'' && depth == 1 => {
                        if expecting_param {
                            if let Some(TokenTree::Ident(lt)) = rest.next() {
                                generics.push(format!("'{lt}"));
                                expecting_param = false;
                            }
                        }
                    }
                    Some(TokenTree::Ident(id)) if depth == 1 => {
                        if expecting_param {
                            if id.to_string() == "const" {
                                panic!(
                                    "serde_derive shim: const generics are not supported \
                                     (deriving on `{name}`); derive by hand or extend the shim"
                                );
                            }
                            generics.push(id.to_string());
                            expecting_param = false;
                        }
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' && depth == 1 => {
                        // Skip bounds until the next top-level comma.
                        expecting_param = false;
                    }
                    Some(_) => {}
                    None => panic!("serde_derive shim: unbalanced generics on `{name}`"),
                }
            }
        }
        return (name.to_string(), generics);
    }
    panic!("serde_derive shim: no struct/enum/union found in derive input")
}

fn empty_impl(input: TokenStream, trait_head: &str, extra_param: Option<&str>) -> TokenStream {
    let (name, generics) = parse_type_header(input);
    let mut params: Vec<String> = Vec::new();
    if let Some(p) = extra_param {
        params.push(p.to_string());
    }
    params.extend(generics.iter().cloned());
    let impl_generics =
        if params.is_empty() { String::new() } else { format!("<{}>", params.join(", ")) };
    let ty_generics =
        if generics.is_empty() { String::new() } else { format!("<{}>", generics.join(", ")) };
    format!("impl{impl_generics} {trait_head} for {name}{ty_generics} {{}}")
        .parse()
        .expect("serde_derive shim: generated impl must parse")
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    empty_impl(input, "::serde::Serialize", None)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    empty_impl(input, "::serde::Deserialize<'de>", Some("'de"))
}
