//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships a minimal, API-compatible subset of `rand` 0.8: the [`Rng`] and
//! [`SeedableRng`] traits and [`rngs::StdRng`], backed by a
//! xoshiro256\*\* generator seeded through SplitMix64. It is fully
//! deterministic for a given seed, which is exactly what the test suite
//! and workload generators want.

/// A source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce via the `Standard` distribution.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw from `0..span` by rejection sampling (no modulo bias).
/// `span == 0` means the full 2^64 range.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    // 2^64 mod span: reject draws below it so the rest splits evenly.
    let threshold = span.wrapping_neg() % span;
    loop {
        let r = rng.next_u64();
        if r >= threshold {
            return r % span;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                let k = uniform_below(rng, span);
                (self.start as $wide).wrapping_add(k as $wide) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                // span+1 wraps to 0 on the full range, which
                // `uniform_below` reads as "all 2^64 values".
                let span = ((hi as $wide).wrapping_sub(lo as $wide) as u64).wrapping_add(1);
                let k = uniform_below(rng, span);
                (lo as $wide).wrapping_add(k as $wide) as $t
            }
        }
    )*};
}
impl_sample_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

/// The user-facing extension trait: `gen`, `gen_range`, `gen_bool`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256\*\* generator, seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors; guarantees a non-zero state.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(-100..100);
            assert!((-100..100).contains(&x));
            let y = rng.gen_range(1..=8u32);
            assert!((1..=8).contains(&y));
            let z = rng.gen_range(0..3usize);
            assert!(z < 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
