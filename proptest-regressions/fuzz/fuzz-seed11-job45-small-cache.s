; stamp fuzz reproducer (minimized by delta debugging)
; campaign seed: 11  job: 45  job seed: 10921670782967001239
; variant: small-cache  shape: legacy
; violation: round 0: UNSOUND WCET — simulated 1289 cycles > bound 1171
; replay: stamp fuzz --iterations 46 --seed 11
        li   r10, 10
loop_6:
        addi r1, r6, 1
        add  r5, r5, r3
        andi r5, r2, 0x7c
        la   r9, scratch
        add  r9, r9, r5
        lw   r5, 0(r9)
        andi r4, r3, 0x7c
        la   r9, scratch
        add  r9, r9, r4
        lw   r4, 0(r9)
        beq r3, r7, then_7
        andi r3, r7, 0x7c
        la   r9, scratch
        add  r9, r9, r3
        sw   r5, 0(r9)
        and  r2, r4, r3
        sub  r4, r5, r2
        j    join_8
then_7:
        andi r5, r3, 0x7c
        la   r9, scratch
        add  r9, r9, r5
        lw   r5, 0(r9)
        andi r7, r5, 0x7c
        la   r9, scratch
        add  r9, r9, r7
        lw   r7, 0(r9)
        sub  r3, r6, r1
join_8:
        addi r10, r10, -1
        bnez r10, loop_6
        halt
        .data
scratch: .space 128
