; stamp fuzz reproducer (minimized by delta debugging)
; campaign seed: 11  job: 255  job seed: 13912687873446176717
; variant: small-cache  shape: branchy
; violation: round 0: UNSOUND WCET — simulated 1481 cycles > bound 1431
; replay: stamp fuzz --iterations 256 --seed 11
        li   r10, 7
loop_3:
        li   r11, 5
loop_4:
        xor  r2, r7, r3
        xor  r4, r2, r4
        andi r7, r4, 0xfe
        la   r9, scratch
        add  r9, r9, r7
        lh   r7, 0(r9)
        addi r11, r11, -1
        bnez r11, loop_4
        addi r10, r10, -1
        bnez r10, loop_3
        halt
        .data
scratch: .space 256
