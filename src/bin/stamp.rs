//! The `stamp` command-line tool: WCET and stack analysis of EVA32
//! assembly files, plus disassembly and simulation.
//!
//! ```text
//! stamp wcet   task.s [--no-cache|--ideal] [--loop-bound SYM=N]... [--json] [--dot out.dot]
//! stamp stack  task.s [--entry SYM] [--recursion SYM=N]...
//! stamp disasm task.s
//! stamp run    task.s [--max-insns N]
//! ```

use std::process::ExitCode;

use stamp::{assemble, Annotations, HwConfig, Simulator, StackAnalysis, WcetAnalysis};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("stamp: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> String {
    "usage:\n  \
     stamp wcet   <task.s> [--no-cache|--ideal] [--loop-bound SYM=N]... [--json] [--dot FILE]\n  \
     stamp stack  <task.s> [--entry SYM] [--recursion SYM=N]...\n  \
     stamp disasm <task.s>\n  \
     stamp run    <task.s> [--max-insns N]"
        .to_string()
}

fn run(args: &[String]) -> Result<(), String> {
    let (cmd, rest) = args.split_first().ok_or_else(usage)?;
    match cmd.as_str() {
        "wcet" => wcet(rest),
        "stack" => stack(rest),
        "disasm" => disasm(rest),
        "run" => simulate(rest),
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn load(path: &str) -> Result<stamp::Program, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    assemble(&src).map_err(|e| format!("{path}: {e}"))
}

/// Parses `SYM=N`.
fn sym_eq_n(s: &str) -> Result<(String, u64), String> {
    let (sym, n) = s.split_once('=').ok_or_else(|| format!("expected SYM=N, got `{s}`"))?;
    let n: u64 = n.parse().map_err(|_| format!("bad count in `{s}`"))?;
    Ok((sym.to_string(), n))
}

fn wcet(args: &[String]) -> Result<(), String> {
    let mut file = None;
    let mut hw = HwConfig::default();
    let mut ann = Annotations::new();
    let mut json = false;
    let mut dot: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--no-cache" => hw = HwConfig::no_cache(),
            "--ideal" => hw = HwConfig::ideal(),
            "--json" => json = true,
            "--dot" => dot = Some(it.next().ok_or("--dot needs a file")?.clone()),
            "--loop-bound" => {
                let (sym, n) = sym_eq_n(it.next().ok_or("--loop-bound needs SYM=N")?)?;
                ann = ann.loop_bound(sym, n);
            }
            f if !f.starts_with('-') && file.is_none() => file = Some(f.to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let program = load(&file.ok_or_else(usage)?)?;
    let report = WcetAnalysis::new(&program)
        .hw(hw)
        .annotations(ann)
        .run()
        .map_err(|e| e.to_string())?;
    if json {
        println!("{}", report.to_json());
    } else {
        println!("{}", report.render(&program));
    }
    if let Some(path) = dot {
        std::fs::write(&path, report.to_dot()).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("wrote annotated CFG to {path}");
    }
    Ok(())
}

fn stack(args: &[String]) -> Result<(), String> {
    let mut file = None;
    let mut entry: Option<String> = None;
    let mut ann = Annotations::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--entry" => entry = Some(it.next().ok_or("--entry needs a symbol")?.clone()),
            "--recursion" => {
                let (sym, n) = sym_eq_n(it.next().ok_or("--recursion needs SYM=N")?)?;
                ann = ann.recursion_depth(sym, n as u32);
            }
            f if !f.starts_with('-') && file.is_none() => file = Some(f.to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let program = load(&file.ok_or_else(usage)?)?;
    let analysis = StackAnalysis::new(&program).annotations(ann);
    let report = match &entry {
        Some(sym) => analysis.run_task(sym),
        None => analysis.run(),
    }
    .map_err(|e| e.to_string())?;
    println!(
        "worst-case stack usage{}: {} bytes ({} mode)",
        entry.map(|e| format!(" of task `{e}`")).unwrap_or_default(),
        report.bound,
        report.mode
    );
    for (name, f) in &report.per_function {
        println!("  {name:<20} local {:>5}  with callees {:>5}", f.local, f.usage);
    }
    Ok(())
}

fn disasm(args: &[String]) -> Result<(), String> {
    let file = args.first().ok_or_else(usage)?;
    let program = load(file)?;
    let (lo, hi) = program.text_range();
    println!("; entry: {} ({:#010x})", program.symbols.format_addr(program.entry), program.entry);
    for addr in (lo..hi).step_by(4) {
        if let Some(name) = program.symbols.name_at(addr) {
            println!("{name}:");
        }
        match program.decode_at(addr) {
            Ok(insn) => println!("  {addr:#010x}:  {insn}"),
            Err(e) => println!("  {addr:#010x}:  <not code: {e}>"),
        }
    }
    for s in &program.sections {
        if !s.kind.is_rom() || s.name == ".text" {
            continue;
        }
        println!("\n; section {} at {:#010x} ({} bytes)", s.name, s.base, s.size);
    }
    Ok(())
}

fn simulate(args: &[String]) -> Result<(), String> {
    let mut file = None;
    let mut max_insns: u64 = 10_000_000;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--max-insns" => {
                max_insns = it
                    .next()
                    .ok_or("--max-insns needs a number")?
                    .parse()
                    .map_err(|_| "bad --max-insns value")?;
            }
            f if !f.starts_with('-') && file.is_none() => file = Some(f.to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let program = load(&file.ok_or_else(usage)?)?;
    let hw = HwConfig::default();
    let mut sim = Simulator::new(&program, &hw);
    let res = sim.run(max_insns).map_err(|e| e.to_string())?;
    println!("status:        {:?}", res.status);
    println!("cycles:        {}", res.cycles);
    println!("instructions:  {}", res.retired);
    println!("max stack:     {} bytes", res.max_stack);
    println!(
        "I-cache:       {} hits / {} misses    D-cache: {} hits / {} misses",
        res.i_hits, res.i_misses, res.d_hits, res.d_misses
    );
    Ok(())
}
