//! The `stamp` command-line tool: WCET and stack analysis of EVA32
//! assembly files, plus batch analysis, disassembly and simulation.
//!
//! ```text
//! stamp wcet   task.s [--no-cache|--ideal] [--loop-bound SYM=N]... [--json] [--dot out.dot]
//! stamp stack  task.s [--entry SYM] [--recursion SYM=N]...
//! stamp batch  manifest.json | --corpus  [--jobs N] [--out FILE] [--no-timing] [--check-pins]
//!              [--no-artifact-cache] [--repeat N] [--dry-run] [--store DIR] [--deadline-ms N]
//! stamp sample manifest.json | --corpus  [--samples N] [--seed N] [--jobs N] [--out FILE]
//!              [--no-timing] [--store DIR]
//! stamp serve  [--socket PATH] [--store DIR] [--queue N] [--per-client N] [--jobs N]
//!              [--default-deadline-ms N]
//! stamp fuzz   [--iterations N] [--seed N] [--jobs N] [--rounds N] [--samples N] [--out FILE]
//!              [--no-timing] [--no-shrink] [--repro-dir DIR] [--inject-fault KIND]
//! stamp disasm task.s
//! stamp run    task.s [--max-insns N]
//! ```

use std::process::ExitCode;

use stamp::analyzer::ArtifactStore;
use stamp::{assemble, Annotations, HwConfig, Simulator, StackAnalysis, WcetAnalysis};

/// A CLI failure, split by exit-code class: `Usage` errors (exit 2) are
/// problems with the invocation — unknown flags, missing or unreadable
/// inputs, malformed manifests; `Analysis` errors (exit 1) are problems
/// with the task — assembly errors, missing loop bounds, pin drift,
/// failed batch jobs; `Violation` (exit 3) is a soundness
/// counterexample found by `stamp fuzz` — the one exit code that means
/// "the analyzer, not the invocation or the task, is wrong".
enum CliError {
    Usage(String),
    Analysis(String),
    Violation(String),
}

use CliError::{Analysis, Usage, Violation};

impl CliError {
    fn exit_code(&self) -> u8 {
        match self {
            Analysis(_) => 1,
            Usage(_) => 2,
            Violation(_) => 3,
        }
    }

    fn message(&self) -> &str {
        match self {
            Analysis(m) | Usage(m) | Violation(m) => m,
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("stamp: {}", e.message());
            ExitCode::from(e.exit_code())
        }
    }
}

fn usage() -> String {
    "usage:\n  \
     stamp wcet   <task.s> [--no-cache|--ideal] [--loop-bound SYM=N]... [--json] [--dot FILE]\n  \
     stamp stack  <task.s> [--entry SYM] [--recursion SYM=N]...\n  \
     stamp batch  <manifest.json> | --corpus  [--jobs N] [--out FILE] [--no-timing] [--check-pins]\n               \
     [--no-artifact-cache] [--repeat N] [--dry-run] [--store DIR] [--deadline-ms N]\n  \
     stamp sample <manifest.json> | --corpus  [--samples N] [--seed N] [--jobs N] [--out FILE]\n               \
     [--no-timing] [--store DIR]\n  \
     stamp serve  [--socket PATH] [--store DIR] [--queue N] [--per-client N] [--jobs N]\n               \
     [--default-deadline-ms N]\n  \
     stamp fuzz   [--iterations N] [--seed N] [--jobs N] [--rounds N] [--samples N] [--out FILE]\n               \
     [--no-timing] [--no-shrink] [--max-shrink-evals N] [--repro-dir DIR] [--inject-fault KIND]\n  \
     stamp disasm <task.s>\n  \
     stamp run    <task.s> [--max-insns N]\n\
     batch flags:\n  \
     --no-artifact-cache  disable cross-job phase-artifact reuse (results are byte-identical)\n  \
     --repeat N           run the request N times against one artifact store (warm-cache passes)\n  \
     --dry-run            print the job matrix and expected per-phase artifact reuse; run nothing\n  \
     --store DIR          persist phase artifacts in DIR and reuse them across processes\n                       \
     (results stay byte-identical; corrupt or truncated stores are\n                       \
     repaired in place; ignored under --no-artifact-cache)\n  \
     --deadline-ms N      per-job wall-clock budget; an over-deadline job becomes a per-job\n                       \
     error (`deadline of N ms exceeded`) and the batch exits 1\n\
     sample flags (probabilistic path sampling: every WCET job also walks the iCFG and reports\n\
     an observed-max / mean / percentile distribution under the sound ILP bound):\n  \
     --samples N          loop-bound-weighted path walks per job (default 64)\n  \
     --seed N             sampling seed (default 0); results are a pure function of\n                       \
     (manifest, --samples, --seed) — byte-identical across --jobs values\n  \
     --store DIR          reuse phase artifacts from DIR (sampling never recomputes\n                       \
     value/cache/pipeline phases a batch already produced)\n                       \
     an observed maximum above a job's WCET bound is a soundness\n                       \
     counterexample: the offending jobs are listed and the exit code is 3\n\
     serve flags (a long-lived daemon; one JSON request per line, one JSON response per line):\n  \
     --socket PATH        listen on a unix socket instead of stdin/stdout\n  \
     --store DIR          keep the warm artifact store durable in DIR (write faults degrade\n                       \
     to in-memory with one warning; the daemon keeps serving)\n  \
     --queue N            admission-queue capacity; a full queue answers `overloaded` (default 64)\n  \
     --per-client N       max queued+running jobs per client, 0 = unlimited (default 0)\n  \
     --default-deadline-ms N  deadline for requests that do not carry `deadline_ms`\n                       \
     (measured from admission; expiry answers `timeout`)\n                       \
     SIGTERM or EOF drains admitted jobs, flushes the store, exits 0\n\
     fuzz flags:\n  \
     --iterations N       fuzz jobs to run (default 256); each is a fresh generated program\n  \
     --seed N             campaign seed (default 0); reports are a pure function of it\n  \
     --rounds N           random-input simulation rounds per program (default 3)\n  \
     --samples N          path-sampling walks per program for the oracle's observed-max ≤ bound\n                       \
     leg (default 32; 0 disables it)\n  \
     --no-shrink          keep counterexamples unminimized\n  \
     --max-shrink-evals N delta-debugging budget per counterexample (default 500)\n  \
     --repro-dir DIR      where reproducers are written (default proptest-regressions/fuzz)\n  \
     --inject-fault KIND  deliberately corrupt the oracle to test the harness:\n                       \
     tight-wcet | tight-stack | tight-sample | contains-div\n\
     exit codes:\n  \
     0  success\n  \
     1  analysis failed (assembly error, missing annotation, failed batch job, pin drift)\n  \
     2  bad arguments (unknown flag or command, unreadable input, malformed manifest,\n        \
     unusable --store directory, bad --samples/--seed value)\n  \
     3  soundness violation (stamp fuzz found a counterexample, or stamp sample observed a\n        \
     path costlier than its job's WCET bound)"
        .to_string()
}

fn run(args: &[String]) -> Result<(), CliError> {
    let (cmd, rest) = args.split_first().ok_or_else(|| Usage(usage()))?;
    match cmd.as_str() {
        "wcet" => wcet(rest),
        "stack" => stack(rest),
        "batch" => batch(rest),
        "sample" => sample(rest),
        "serve" => serve(rest),
        "fuzz" => fuzz(rest),
        "disasm" => disasm(rest),
        "run" => simulate(rest),
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(Usage(format!("unknown command `{other}`\n{}", usage()))),
    }
}

fn load(path: &str) -> Result<stamp::Program, CliError> {
    let src = std::fs::read_to_string(path).map_err(|e| Usage(format!("{path}: {e}")))?;
    assemble(&src).map_err(|e| Analysis(format!("{path}: {e}")))
}

/// Parses `SYM=N`.
fn sym_eq_n(s: &str) -> Result<(String, u64), CliError> {
    let (sym, n) = s.split_once('=').ok_or_else(|| Usage(format!("expected SYM=N, got `{s}`")))?;
    let n: u64 = n.parse().map_err(|_| Usage(format!("bad count in `{s}`")))?;
    Ok((sym.to_string(), n))
}

fn wcet(args: &[String]) -> Result<(), CliError> {
    let mut file = None;
    let mut hw = HwConfig::default();
    let mut ann = Annotations::new();
    let mut json = false;
    let mut dot: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--no-cache" => hw = HwConfig::no_cache(),
            "--ideal" => hw = HwConfig::ideal(),
            "--json" => json = true,
            "--dot" => dot = Some(it.next().ok_or(Usage("--dot needs a file".into()))?.clone()),
            "--loop-bound" => {
                let (sym, n) =
                    sym_eq_n(it.next().ok_or(Usage("--loop-bound needs SYM=N".into()))?)?;
                ann = ann.loop_bound(sym, n);
            }
            f if !f.starts_with('-') && file.is_none() => file = Some(f.to_string()),
            other => return Err(Usage(format!("unexpected argument `{other}`"))),
        }
    }
    let program = load(&file.ok_or_else(|| Usage(usage()))?)?;
    let report = WcetAnalysis::new(&program)
        .hw(hw)
        .annotations(ann)
        .run()
        .map_err(|e| Analysis(e.to_string()))?;
    if json {
        println!("{}", report.to_json());
    } else {
        println!("{}", report.render(&program));
    }
    if let Some(path) = dot {
        std::fs::write(&path, report.to_dot()).map_err(|e| Usage(format!("{path}: {e}")))?;
        eprintln!("wrote annotated CFG to {path}");
    }
    Ok(())
}

fn stack(args: &[String]) -> Result<(), CliError> {
    let mut file = None;
    let mut entry: Option<String> = None;
    let mut ann = Annotations::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--entry" => {
                entry = Some(it.next().ok_or(Usage("--entry needs a symbol".into()))?.clone())
            }
            "--recursion" => {
                let (sym, n) = sym_eq_n(it.next().ok_or(Usage("--recursion needs SYM=N".into()))?)?;
                ann = ann.recursion_depth(sym, n as u32);
            }
            f if !f.starts_with('-') && file.is_none() => file = Some(f.to_string()),
            other => return Err(Usage(format!("unexpected argument `{other}`"))),
        }
    }
    let program = load(&file.ok_or_else(|| Usage(usage()))?)?;
    let analysis = StackAnalysis::new(&program).annotations(ann);
    let report = match &entry {
        Some(sym) => analysis.run_task(sym),
        None => analysis.run(),
    }
    .map_err(|e| Analysis(e.to_string()))?;
    println!(
        "worst-case stack usage{}: {} bytes ({} mode)",
        entry.map(|e| format!(" of task `{e}`")).unwrap_or_default(),
        report.bound,
        report.mode
    );
    for (name, f) in &report.per_function {
        println!("  {name:<20} local {:>5}  with callees {:>5}", f.local, f.usage);
    }
    Ok(())
}

/// `stamp batch`: run a whole job matrix (a JSON manifest or the
/// built-in EVA32 corpus) across a worker pool and emit one merged
/// machine-readable report.
fn batch(args: &[String]) -> Result<(), CliError> {
    let mut manifest: Option<String> = None;
    let mut corpus = false;
    let mut jobs = stamp::exec::default_workers();
    let mut out: Option<String> = None;
    let mut no_timing = false;
    let mut check_pins = false;
    let mut artifact_cache = true;
    let mut repeat: usize = 1;
    let mut dry_run = false;
    let mut store_dir: Option<String> = None;
    let mut deadline: Option<std::time::Duration> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--corpus" => corpus = true,
            "--check-pins" => check_pins = true,
            "--no-timing" => no_timing = true,
            "--no-artifact-cache" => artifact_cache = false,
            "--dry-run" => dry_run = true,
            "--store" => {
                store_dir =
                    Some(it.next().ok_or(Usage("--store needs a directory".into()))?.clone());
            }
            "--deadline-ms" => {
                let ms: u64 = it
                    .next()
                    .ok_or(Usage("--deadline-ms needs a number".into()))?
                    .parse()
                    .map_err(|_| Usage("bad --deadline-ms value".into()))?;
                deadline = Some(std::time::Duration::from_millis(ms));
            }
            "--jobs" => {
                jobs = it
                    .next()
                    .ok_or(Usage("--jobs needs a number".into()))?
                    .parse()
                    .map_err(|_| Usage("bad --jobs value".into()))?;
            }
            "--repeat" => {
                repeat = it
                    .next()
                    .ok_or(Usage("--repeat needs a number".into()))?
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or(Usage("bad --repeat value (need an integer ≥ 1)".into()))?;
            }
            "--out" => out = Some(it.next().ok_or(Usage("--out needs a file".into()))?.clone()),
            f if !f.starts_with('-') && manifest.is_none() => manifest = Some(f.to_string()),
            other => return Err(Usage(format!("unexpected argument `{other}`"))),
        }
    }

    let request = load_request("batch", &manifest, corpus)?;
    if check_pins && !corpus {
        return Err(Usage("--check-pins requires --corpus (pins cover the corpus)".into()));
    }
    if dry_run {
        print_batch_plan(&request);
        return Ok(());
    }

    let store = if !artifact_cache {
        // `--store` is a cache backend; with the cache off there is
        // nothing to persist, so the flag is documented as ignored.
        if store_dir.is_some() {
            eprintln!("batch: --no-artifact-cache is set; ignoring --store");
        }
        ArtifactStore::disabled()
    } else if let Some(dir) = &store_dir {
        let (store, warnings) = ArtifactStore::with_disk(std::path::Path::new(dir))
            .map_err(|e| Usage(format!("--store {dir}: {e}")))?;
        for w in &warnings {
            eprintln!("batch: store: {w}");
        }
        store
    } else {
        ArtifactStore::new()
    };
    let mut report = stamp::analyzer::run_batch_deadline(&request, jobs, &store, deadline)
        .map_err(|e| Analysis(e.to_string()))?;
    for pass in 2..=repeat {
        eprintln!("{}", batch_pass_summary(&report, &store, pass - 1, repeat));
        report = stamp::analyzer::run_batch_deadline(&request, jobs, &store, deadline)
            .map_err(|e| Analysis(e.to_string()))?;
    }
    // A disk fault during any pass degrades the store to in-memory-only;
    // surface its single warning rather than failing the batch.
    if let Some(w) = store.take_disk_warning() {
        eprintln!("batch: store: {w}");
    }

    let json = if no_timing { report.results_json() } else { report.to_json() };
    let rendered = format!("{json}\n");
    match &out {
        Some(path) => std::fs::write(path, &rendered).map_err(|e| Usage(format!("{path}: {e}")))?,
        None => print!("{rendered}"),
    }
    eprintln!("{}", batch_pass_summary(&report, &store, repeat, repeat));

    let mut drift: Vec<String> = Vec::new();
    if check_pins {
        // Same comparison as `kernel_bench --check` (the shared
        // stamp_bench::pins::check_corpus helper), so the two pin gates
        // cannot diverge.
        let measured: Vec<stamp::bench::pins::MeasuredTask> = report
            .results
            .iter()
            .map(|r| stamp::bench::pins::MeasuredTask {
                name: r.name.clone(),
                wcet: r.wcet,
                stack: r.stack,
                evaluations: r.evaluations,
                fetch: r.fetch,
                data: r.data,
            })
            .collect();
        drift = stamp::bench::pins::check_corpus(&measured);
    }
    if !drift.is_empty() {
        for d in &drift {
            eprintln!("batch: DRIFT {d}");
        }
        return Err(Analysis(format!("{} job(s) diverged from pins", drift.len())));
    }
    if report.errors() > 0 {
        return Err(Analysis(format!("{} batch job(s) failed", report.errors())));
    }
    Ok(())
}

/// Resolves a job matrix for `stamp batch` / `stamp sample`: a JSON
/// manifest file or (with `--corpus`) the built-in EVA32 corpus.
fn load_request(
    cmd: &str,
    manifest: &Option<String>,
    corpus: bool,
) -> Result<stamp::BatchRequest, CliError> {
    match (manifest, corpus) {
        (Some(_), true) | (None, false) => {
            Err(Usage(format!("{cmd} needs a manifest file or --corpus (not both)\n{}", usage())))
        }
        (None, true) => Ok(stamp::suite::corpus_request()),
        (Some(path), false) => {
            let text = std::fs::read_to_string(path).map_err(|e| Usage(format!("{path}: {e}")))?;
            let base = std::path::Path::new(path)
                .parent()
                .filter(|p| !p.as_os_str().is_empty())
                .unwrap_or(std::path::Path::new("."));
            stamp::suite::parse_manifest(&text, base).map_err(|e| Usage(e.to_string()))
        }
    }
}

/// `stamp sample`: the probabilistic path-sampling backend. Every WCET
/// job of the matrix additionally walks the iCFG `--samples` times —
/// loop-bound-weighted, seed-pinned — through the same cache/pipeline
/// cost model the ILP priced, and reports the observed-max / mean /
/// percentile WCET distribution next to the sound bound. Every sampled
/// path is a feasible ILP point, so `observed-max > WCET` is a
/// soundness counterexample (exit 3).
fn sample(args: &[String]) -> Result<(), CliError> {
    let mut manifest: Option<String> = None;
    let mut corpus = false;
    let mut jobs = stamp::exec::default_workers();
    let mut out: Option<String> = None;
    let mut no_timing = false;
    let mut store_dir: Option<String> = None;
    let mut samples: usize = 64;
    let mut seed: u64 = 0;
    let mut it = args.iter();
    let parse = |name: &str, v: Option<&String>| -> Result<u64, CliError> {
        v.ok_or(Usage(format!("{name} needs a number")))?
            .parse()
            .map_err(|_| Usage(format!("bad {name} value")))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--corpus" => corpus = true,
            "--no-timing" => no_timing = true,
            "--samples" => samples = parse(a, it.next())? as usize,
            "--seed" => seed = parse(a, it.next())?,
            "--jobs" => jobs = parse(a, it.next())? as usize,
            "--store" => {
                store_dir =
                    Some(it.next().ok_or(Usage("--store needs a directory".into()))?.clone());
            }
            "--out" => out = Some(it.next().ok_or(Usage("--out needs a file".into()))?.clone()),
            f if !f.starts_with('-') && manifest.is_none() => manifest = Some(f.to_string()),
            other => return Err(Usage(format!("unexpected argument `{other}`"))),
        }
    }

    let mut request = load_request("sample", &manifest, corpus)?;
    // The CLI's knobs apply uniformly: every WCET job samples with
    // (--samples, --seed), overriding any per-variant manifest
    // `sampling` block (use `stamp batch` for mixed matrices).
    for job in &mut request.jobs {
        if job.wcet {
            job.sampling = Some(stamp::analyzer::SampleParams { samples, seed });
        }
    }

    let store = match &store_dir {
        Some(dir) => {
            let (store, warnings) = ArtifactStore::with_disk(std::path::Path::new(dir))
                .map_err(|e| Usage(format!("--store {dir}: {e}")))?;
            for w in &warnings {
                eprintln!("sample: store: {w}");
            }
            store
        }
        None => ArtifactStore::new(),
    };
    let report = stamp::analyzer::run_batch_deadline(&request, jobs, &store, None)
        .map_err(|e| Analysis(e.to_string()))?;
    if let Some(w) = store.take_disk_warning() {
        eprintln!("sample: store: {w}");
    }

    let json = if no_timing { report.results_json() } else { report.to_json() };
    let rendered = format!("{json}\n");
    match &out {
        Some(path) => std::fs::write(path, &rendered).map_err(|e| Usage(format!("{path}: {e}")))?,
        None => print!("{rendered}"),
    }

    let sampled: Vec<_> = report.results.iter().filter(|r| r.sampling.is_some()).collect();
    let walks: usize = sampled.iter().map(|r| r.sampling.as_ref().unwrap().completed).sum();
    // Tightness: how close the sampled observed-max comes to the sound
    // bound, at its worst across the matrix (sampling is a lower bound,
    // so ≤ 100% unless the analyzer is broken).
    let tightness = sampled
        .iter()
        .filter_map(|r| {
            let s = r.sampling.as_ref().unwrap();
            Some((s.observed_max? as f64 / r.wcet? as f64) * 100.0)
        })
        .fold(f64::NAN, f64::max);
    eprintln!(
        "sample: {} jobs ({} sampled) × {samples} walks (seed {seed}) on {} workers in {:.1} ms \
         — {walks} completed walks, worst observed/WCET {:.0}%",
        report.results.len(),
        sampled.len(),
        report.workers,
        report.wall_ms,
        tightness,
    );

    let violations: Vec<String> = sampled
        .iter()
        .filter_map(|r| {
            let s = r.sampling.as_ref().unwrap();
            match (s.observed_max, r.wcet) {
                (Some(observed), Some(bound)) if observed > bound => Some(format!(
                    "{}: sampled path of {observed} cycles exceeds the WCET bound {bound}",
                    r.name
                )),
                _ => None,
            }
        })
        .collect();
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("sample: UNSOUND {v}");
        }
        return Err(Violation(format!(
            "{} job(s) sampled a path above the WCET bound",
            violations.len()
        )));
    }
    if report.errors() > 0 {
        return Err(Analysis(format!("{} sample job(s) failed", report.errors())));
    }
    Ok(())
}

/// `stamp serve`: the fault-tolerant long-lived analysis daemon. One
/// warm artifact store (optionally disk-backed) lives across requests;
/// a bounded queue rejects overload, per-request deadlines cancel
/// runaway fixpoints, a panicking job yields one `job_panicked`
/// response, and SIGTERM/EOF drains gracefully. See `stamp_serve` for
/// the protocol.
fn serve(args: &[String]) -> Result<(), CliError> {
    use stamp::serve::{serve_stdio, serve_unix, Engine, EngineConfig};

    let mut socket: Option<String> = None;
    let mut store_dir: Option<String> = None;
    let mut config = EngineConfig { workers: stamp::exec::default_workers(), ..Default::default() };
    let mut it = args.iter();
    let parse = |name: &str, v: Option<&String>| -> Result<u64, CliError> {
        v.ok_or(Usage(format!("{name} needs a number")))?
            .parse()
            .map_err(|_| Usage(format!("bad {name} value")))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => {
                socket = Some(it.next().ok_or(Usage("--socket needs a path".into()))?.clone());
            }
            "--store" => {
                store_dir =
                    Some(it.next().ok_or(Usage("--store needs a directory".into()))?.clone());
            }
            "--queue" => {
                config.queue = parse(a, it.next())? as usize;
                if config.queue == 0 {
                    return Err(Usage("--queue must be at least 1".into()));
                }
            }
            "--per-client" => config.per_client = parse(a, it.next())? as usize,
            "--jobs" => config.workers = parse(a, it.next())? as usize,
            "--default-deadline-ms" => {
                config.default_deadline =
                    Some(std::time::Duration::from_millis(parse(a, it.next())?));
            }
            other => return Err(Usage(format!("unexpected argument `{other}`"))),
        }
    }

    let store = match &store_dir {
        Some(dir) => {
            let (store, warnings) = ArtifactStore::with_disk(std::path::Path::new(dir))
                .map_err(|e| Usage(format!("--store {dir}: {e}")))?;
            for w in &warnings {
                eprintln!("serve: store: {w}");
            }
            store
        }
        None => ArtifactStore::new(),
    };
    let engine = Engine::new(store, config);
    let code = match &socket {
        Some(path) => serve_unix(&engine, std::path::Path::new(path))
            .map_err(|e| Usage(format!("--socket {path}: {e}")))?,
        None => serve_stdio(&engine),
    };
    if code == 0 {
        Ok(())
    } else {
        Err(Analysis(format!("serve exited with code {code}")))
    }
}

/// `stamp fuzz`: a differential soundness campaign — thousands of
/// generated programs, each analyzed and simulated under a
/// (HwConfig × ValueOptions) sweep, every observation checked against
/// the static bounds. Counterexamples are delta-debugged to minimal
/// reproducers and persisted; finding any exits 3.
fn fuzz(args: &[String]) -> Result<(), CliError> {
    use stamp::suite::fuzz::{run_campaign, FuzzConfig};
    use stamp::suite::oracle::FaultInjection;

    let mut cfg = FuzzConfig::default();
    let mut jobs = stamp::exec::default_workers();
    let mut out: Option<String> = None;
    let mut no_timing = false;
    let mut repro_dir = std::path::PathBuf::from("proptest-regressions/fuzz");
    let mut it = args.iter();
    let parse = |name: &str, v: Option<&String>| -> Result<u64, CliError> {
        v.ok_or(Usage(format!("{name} needs a number")))?
            .parse()
            .map_err(|_| Usage(format!("bad {name} value")))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--iterations" => cfg.iterations = parse(a, it.next())? as usize,
            "--seed" => cfg.seed = parse(a, it.next())?,
            "--rounds" => cfg.rounds = parse(a, it.next())? as usize,
            "--samples" => cfg.samples = parse(a, it.next())? as usize,
            "--jobs" => jobs = parse(a, it.next())? as usize,
            "--max-shrink-evals" => cfg.max_shrink_evals = parse(a, it.next())? as usize,
            "--no-shrink" => cfg.shrink = false,
            "--no-timing" => no_timing = true,
            "--out" => out = Some(it.next().ok_or(Usage("--out needs a file".into()))?.clone()),
            "--repro-dir" => {
                repro_dir = it.next().ok_or(Usage("--repro-dir needs a directory".into()))?.into();
            }
            "--inject-fault" => {
                let kind = it.next().ok_or(Usage("--inject-fault needs a kind".into()))?;
                cfg.fault = Some(match kind.as_str() {
                    "tight-wcet" => FaultInjection::TightenWcet(50),
                    "tight-stack" => FaultInjection::TightenStack(50),
                    "tight-sample" => FaultInjection::TightenSample(1),
                    "contains-div" => FaultInjection::FlagMnemonic("div".to_string()),
                    other => {
                        return Err(Usage(format!(
                            "unknown fault `{other}` (tight-wcet | tight-stack | tight-sample | \
                             contains-div)"
                        )))
                    }
                });
            }
            other => return Err(Usage(format!("unexpected argument `{other}`"))),
        }
    }
    cfg.repro_dir = Some(repro_dir);

    let report = run_campaign(&cfg, jobs).map_err(|e| Analysis(e.to_string()))?;

    let json = if no_timing { report.results_json() } else { report.to_json() };
    let rendered = format!("{json}\n");
    match &out {
        Some(path) => std::fs::write(path, &rendered).map_err(|e| Usage(format!("{path}: {e}")))?,
        None => print!("{rendered}"),
    }
    eprintln!(
        "fuzz: {} programs × {} variants on {} workers ({} cores) in {:.1} ms — {:.0} programs/s, \
         {} simulation rounds, {} violation(s)",
        report.programs,
        report.variants.len(),
        report.workers,
        report.cores,
        report.wall_ms,
        report.throughput(),
        report.sim_runs,
        report.violations(),
    );
    if report.violations() > 0 {
        for f in &report.findings {
            eprintln!(
                "fuzz: VIOLATION job {} seed {} variant {} ({}): {} [{} -> {} lines{}]",
                f.job,
                f.seed,
                f.variant,
                f.shape,
                f.message,
                f.original_lines,
                f.shrunk_lines,
                f.repro_path.as_deref().map(|p| format!("; reproducer {p}")).unwrap_or_default(),
            );
        }
        return Err(Violation(format!(
            "{} soundness violation(s) — reproducers written",
            report.violations()
        )));
    }
    Ok(())
}

/// The one-line stderr summary of a batch pass, including the
/// artifact-cache statistics when caching was on and the durable-store
/// statistics when `--store` was given.
fn batch_pass_summary(
    report: &stamp::BatchReport,
    store: &ArtifactStore,
    pass: usize,
    passes: usize,
) -> String {
    let mut line = format!(
        "batch{}: {} jobs on {} workers ({} cores) in {:.1} ms — {:.0} jobs/s, {} failed",
        if passes > 1 { format!(" pass {pass}/{passes}") } else { String::new() },
        report.results.len(),
        report.workers,
        report.cores,
        report.wall_ms,
        report.throughput(),
        report.errors(),
    );
    if report.artifacts.enabled {
        line.push_str(&format!(
            "; artifact cache: {} hits / {} misses ({:.0}% reuse)",
            report.artifacts.hits(),
            report.artifacts.misses(),
            report.artifacts.hit_rate() * 100.0,
        ));
        if store.disk_path().is_some() {
            line.push_str(&format!(
                "; disk store: {} disk hits ({:.0}% warm), {} artifacts on disk",
                report.artifacts.hits_disk(),
                report.artifacts.disk_hit_rate() * 100.0,
                store.disk_artifact_count(),
            ));
        }
    }
    line
}

/// `stamp batch --dry-run`: the resolved job matrix plus the expected
/// per-phase artifact reuse, without running any analysis.
fn print_batch_plan(request: &stamp::BatchRequest) {
    let plan = stamp::suite::plan(request);
    println!("batch plan: {} jobs", plan.jobs.len());
    println!("  {:<28} {:<16} {:<12} knobs", "job", "target", "variant");
    for j in &plan.jobs {
        println!(
            "  {:<28} {:<16} {:<12} {}{}",
            j.name,
            j.target,
            j.variant,
            j.knobs,
            j.error.as_ref().map(|e| format!("  [will fail: {e}]")).unwrap_or_default(),
        );
    }
    println!("\nexpected phase-artifact reuse (cold store):");
    println!("  {:<12} {:>8} {:>8} {:>14}", "phase", "requests", "unique", "expected hits");
    for p in &plan.phases {
        println!(
            "  {:<12} {:>8} {:>8} {:>14}",
            p.phase.name(),
            p.requests,
            p.unique,
            p.expected_hits()
        );
    }
    println!(
        "  {:<12} {:>8} {:>8} {:>14}  ({:.0}% expected reuse)",
        "total",
        plan.requests(),
        plan.unique(),
        plan.requests() - plan.unique(),
        plan.expected_hit_rate() * 100.0,
    );
    println!(
        "\n(estimate: indirect-jump feedback iterations and recursive-task \
         fallbacks resolve at run time)"
    );
}

fn disasm(args: &[String]) -> Result<(), CliError> {
    let file = args.first().ok_or_else(|| Usage(usage()))?;
    let program = load(file)?;
    let (lo, hi) = program.text_range();
    println!("; entry: {} ({:#010x})", program.symbols.format_addr(program.entry), program.entry);
    for addr in (lo..hi).step_by(4) {
        if let Some(name) = program.symbols.name_at(addr) {
            println!("{name}:");
        }
        match program.decode_at(addr) {
            Ok(insn) => println!("  {addr:#010x}:  {insn}"),
            Err(e) => println!("  {addr:#010x}:  <not code: {e}>"),
        }
    }
    for s in &program.sections {
        if !s.kind.is_rom() || s.name == ".text" {
            continue;
        }
        println!("\n; section {} at {:#010x} ({} bytes)", s.name, s.base, s.size);
    }
    Ok(())
}

fn simulate(args: &[String]) -> Result<(), CliError> {
    let mut file = None;
    let mut max_insns: u64 = 10_000_000;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--max-insns" => {
                max_insns = it
                    .next()
                    .ok_or(Usage("--max-insns needs a number".into()))?
                    .parse()
                    .map_err(|_| Usage("bad --max-insns value".into()))?;
            }
            f if !f.starts_with('-') && file.is_none() => file = Some(f.to_string()),
            other => return Err(Usage(format!("unexpected argument `{other}`"))),
        }
    }
    let program = load(&file.ok_or_else(|| Usage(usage()))?)?;
    let hw = HwConfig::default();
    let mut sim = Simulator::new(&program, &hw);
    let res = sim.run(max_insns).map_err(|e| Analysis(e.to_string()))?;
    println!("status:        {:?}", res.status);
    println!("cycles:        {}", res.cycles);
    println!("instructions:  {}", res.retired);
    println!("max stack:     {} bytes", res.max_stack);
    println!(
        "I-cache:       {} hits / {} misses    D-cache: {} hits / {} misses",
        res.i_hits, res.i_misses, res.d_hits, res.d_misses
    );
    Ok(())
}
