//! # stamp — Static Timing And Memory-usage Properties
//!
//! A from-scratch implementation of the system described in Heckmann &
//! Ferdinand, *"Verifying Safety-Critical Timing and Memory-Usage
//! Properties of Embedded Software by Abstract Interpretation"* (DATE
//! 2005): a WCET analyzer (aiT) and a stack-usage analyzer
//! (StackAnalyzer) for a 32-bit embedded RISC target, built on abstract
//! interpretation and integer linear programming.
//!
//! This crate is the facade: it re-exports the entire workspace. Start
//! with [`WcetAnalysis`] and [`StackAnalysis`]; see `DESIGN.md` at the
//! workspace root for the crate DAG and analysis phases, and
//! `cargo run --release -p stamp_bench --bin experiments` for the
//! paper's evaluation tables.
//!
//! # Quickstart
//!
//! ```
//! use stamp::{assemble, StackAnalysis, WcetAnalysis};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = assemble(
//!     r#"
//!         .text
//!     main:
//!         addi sp, sp, -32        ; reserve a frame
//!         li   r1, 100
//!     loop:
//!         addi r1, r1, -1
//!         bnez r1, loop
//!         addi sp, sp, 32
//!         halt
//!     "#,
//! )?;
//!
//! let wcet = WcetAnalysis::new(&program).run()?;
//! let stack = StackAnalysis::new(&program).run()?;
//! assert!(wcet.wcet >= 100);
//! assert_eq!(stack.bound, 32);
//! # Ok(())
//! # }
//! ```

// The subsystem crates, under their natural names.
pub use stamp_ai as ai;
pub use stamp_bench as bench;
pub use stamp_cache as cache;
pub use stamp_cfg as cfg;
pub use stamp_core as analyzer;
pub use stamp_exec as exec;
pub use stamp_hw as hw;
pub use stamp_ilp as ilp;
pub use stamp_isa as isa;
pub use stamp_loopbound as loopbound;
pub use stamp_path as path;
pub use stamp_pipeline as pipeline;
pub use stamp_sample as sample;
pub use stamp_serve as serve;
pub use stamp_sim as sim;
pub use stamp_stack as stack;
pub use stamp_suite as suite;
pub use stamp_value as value;

// The primary user-facing API, re-exported flat.
pub use stamp_core::{
    run_batch, AnalysisConfig, AnalysisError, Annotations, BatchReport, BatchRequest, BatchTarget,
    BatchVariant, StackAnalysis, StackReport, WcetAnalysis, WcetReport,
};
pub use stamp_hw::HwConfig;
pub use stamp_isa::asm::assemble;
pub use stamp_isa::Program;
pub use stamp_sample::{sample_paths, SampleOptions, SampleSummary};
pub use stamp_sim::Simulator;
pub use stamp_stack::{OsekSystem, Task};
